//! Plain-text / markdown rendering of experiment results.

/// Formats a duration in seconds with a human-friendly unit (µs / ms / s),
/// matching the magnitude conventions of the paper's tables.
pub fn format_seconds(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "n/a".to_string();
    }
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Renders a markdown table from a header row and data rows.
pub fn format_markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for &w in &widths {
        sep.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Renders a simple ASCII bar for quick terminal visualisation (used by the
/// figure binaries to sketch the speedup plots).
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

/// A minimal JSON document model with pretty printing.
///
/// The build environment is offline, so `serde_json` is not available; the
/// figure binaries and the perf-baseline emitter build their documents with
/// this module instead.  Only the value shapes the harness emits are
/// supported (objects, arrays, strings, numbers, booleans).
pub mod json {
    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// A finite number (non-finite values serialise as `null`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object with insertion-ordered keys.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience constructor for strings.
        pub fn str(s: impl Into<String>) -> Json {
            Json::Str(s.into())
        }

        /// Convenience constructor for objects.
        pub fn obj(fields: Vec<(&str, Json)>) -> Json {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        /// Pretty-prints the value with two-space indentation.
        pub fn pretty(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, 0);
            out
        }

        fn write(&self, out: &mut String, indent: usize) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(x) => {
                    if x.is_finite() {
                        if x.fract() == 0.0 && x.abs() < 9.0e15 {
                            out.push_str(&format!("{}", *x as i64));
                        } else {
                            out.push_str(&format!("{x}"));
                        }
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => write_json_string(out, s),
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&"  ".repeat(indent + 1));
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&"  ".repeat(indent));
                    out.push(']');
                }
                Json::Obj(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        out.push_str(&"  ".repeat(indent + 1));
                        write_json_string(out, k);
                        out.push_str(": ");
                        v.write(out, indent + 1);
                        if i + 1 < fields.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&"  ".repeat(indent));
                    out.push('}');
                }
            }
        }
    }

    /// Writes `s` as a JSON string literal with RFC 8259 escaping (shared by
    /// string values and object keys).
    fn write_json_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Types that can render themselves as a [`Json`] value.
    pub trait ToJson {
        /// Converts `self` into a JSON value.
        fn to_json(&self) -> Json;
    }

    impl<T: ToJson> ToJson for Vec<T> {
        fn to_json(&self) -> Json {
            Json::Arr(self.iter().map(ToJson::to_json).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_pretty_prints_and_escapes() {
        use json::Json;
        let doc = Json::obj(vec![
            ("name", Json::str("a\"b")),
            ("n", Json::Num(3.0)),
            (
                "xs",
                Json::Arr(vec![Json::Num(1.5), Json::Bool(true), Json::Null]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.pretty();
        assert!(text.contains("\"name\": \"a\\\"b\""));
        assert!(text.contains("\"n\": 3"));
        assert!(text.contains("1.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with('}'));
    }

    #[test]
    fn json_nan_becomes_null() {
        assert_eq!(json::Json::Num(f64::NAN).pretty(), "null");
    }

    #[test]
    fn json_object_keys_are_escaped_like_values() {
        let doc = json::Json::Obj(vec![("a\"\n\u{1b}b".to_string(), json::Json::Num(1.0))]);
        let text = doc.pretty();
        assert!(text.contains("\"a\\\"\\n\\u001bb\": 1"), "{text}");
    }

    #[test]
    fn format_seconds_selects_units() {
        assert_eq!(format_seconds(0.0000171), "17.1 µs");
        assert_eq!(format_seconds(0.0641), "64.100 ms");
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(f64::NAN), "n/a");
    }

    #[test]
    fn markdown_table_aligns_columns() {
        let table = format_markdown_table(
            &["alg", "Jsum"],
            &[
                vec!["Hyperplane".to_string(), "1328".to_string()],
                vec!["k-d Tree".to_string(), "1732".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alg"));
        assert!(lines[1].starts_with("|---"));
        assert!(lines[2].contains("Hyperplane"));
        // all lines have equal length
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn ascii_bar_scales() {
        assert_eq!(ascii_bar(5.0, 10.0, 10), "#####");
        assert_eq!(ascii_bar(10.0, 10.0, 4), "####");
        assert_eq!(ascii_bar(0.0, 10.0, 4), "");
        assert_eq!(ascii_bar(1.0, 0.0, 4), "");
    }
}
