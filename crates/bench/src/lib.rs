//! # stencil-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! evaluation section of the paper (see `DESIGN.md` for the experiment
//! index).  The heavy lifting lives in this library crate so that both the
//! command-line binaries (`figure6_7`, `figure8`, `figure9`, `tables`) and
//! the Criterion benches reuse the same code, and so that integration tests
//! can exercise the harness on shrunk instances.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod figures;
pub mod perfcheck;
pub mod report;
pub mod timing;

pub use figures::{
    Figure67Config, Figure67Row, Figure8Config, Figure8Row, ScoreRow, TableConfig, TableRow,
};
pub use report::{format_markdown_table, format_seconds};
pub use timing::{time_instantiations, InstantiationTiming};

use stencil_grid::{Dims, NodeAllocation, Stencil};
use stencil_mapping::analysis::StencilKind;
use stencil_mapping::MappingProblem;

/// Returns the value following `flag` in an argument list — the shared
/// minimal flag parsing of the benchmark binaries (`perf_baseline`,
/// `perf_check`, `loadgen`, the figure emitters).
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The two throughput-experiment scales of the paper: 50 nodes (50×48 grid)
/// and 100 nodes (75×64 grid), both with 48 processes per node.
pub fn paper_throughput_instance(nodes: usize, stencil: StencilKind) -> MappingProblem {
    let per_node = 48usize;
    let dims = stencil_grid::dims_create(nodes * per_node, 2);
    MappingProblem::new(
        Dims::new(dims).expect("valid dims"),
        stencil.build(2),
        NodeAllocation::homogeneous(nodes, per_node),
    )
    .expect("consistent paper instance")
}

/// A shrunk variant of the throughput instance for fast tests and `--quick`
/// runs: 8 nodes with 12 processes each.
pub fn quick_throughput_instance(stencil: StencilKind) -> MappingProblem {
    let dims = stencil_grid::dims_create(8 * 12, 2);
    MappingProblem::new(
        Dims::new(dims).expect("valid dims"),
        stencil.build(2),
        NodeAllocation::homogeneous(8, 12),
    )
    .expect("consistent quick instance")
}

/// Builds the stencil used by the figure-9 instantiation benchmark (the
/// largest nearest-neighbor instance of Section VI-D, i.e. N = 100).
pub fn figure9_instance() -> MappingProblem {
    paper_throughput_instance(100, StencilKind::NearestNeighbor)
}

/// Convenience: the three paper stencils with their display names.
pub fn paper_stencils() -> Vec<(StencilKind, Stencil)> {
    StencilKind::all()
        .into_iter()
        .map(|k| (k, k.build(2)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instances_have_expected_shapes() {
        let p50 = paper_throughput_instance(50, StencilKind::NearestNeighbor);
        assert_eq!(p50.dims().as_slice(), &[50, 48]);
        assert_eq!(p50.num_nodes(), 50);
        let p100 = paper_throughput_instance(100, StencilKind::Component);
        assert_eq!(p100.dims().as_slice(), &[75, 64]);
        assert_eq!(p100.num_nodes(), 100);
        let quick = quick_throughput_instance(StencilKind::NearestNeighborHops);
        assert_eq!(quick.num_processes(), 96);
        assert_eq!(figure9_instance().num_processes(), 4800);
        assert_eq!(paper_stencils().len(), 3);
    }
}
