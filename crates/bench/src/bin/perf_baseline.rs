//! Emits `BENCH_mapping.json` — the perf-trajectory baseline of the mapping
//! engine: instantiation (reordering) time per algorithm and metric
//! evaluation time (streaming vs. CSR), plus the parallel/sequential
//! multilevel-partitioner timings.
//!
//! ```text
//! cargo run --release -p stencil-bench --bin perf_baseline -- [--quick] [--out BENCH_mapping.json]
//! ```

use std::time::Instant;

use graph_partition::{partition, Graph, PartitionConfig};
use stencil_bench::paper_throughput_instance;
use stencil_bench::report::json::Json;
use stencil_bench::timing::time_instantiations;
use stencil_grid::{dims_create, CartGraph, Dims, NodeAllocation, Stencil};
use stencil_mapping::analysis::StencilKind;
use stencil_mapping::hyperplane::Hyperplane;
use stencil_mapping::kdtree::KdTree;
use stencil_mapping::metrics;
use stencil_mapping::stencil_strips::StencilStrips;
use stencil_mapping::{Mapper, MappingProblem};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = stencil_bench::arg_value(&args, "--out")
        .unwrap_or_else(|| "BENCH_mapping.json".to_string());

    let repetitions = if quick { 3 } else { 20 };
    let figure_nodes = if quick { 25 } else { 100 };
    // figure-scale metric instance: p = 2^16 (1024 nodes x 64 procs)
    let metric_nodes = if quick { 64 } else { 1024 };

    eprintln!(
        "perf_baseline: threads = {}, repetitions = {repetitions}",
        rayon::current_num_threads()
    );

    // --- instantiation time (Fig. 9 protocol) -----------------------------
    let problem = paper_throughput_instance(figure_nodes, StencilKind::NearestNeighbor);
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Hyperplane::default()),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(stencil_mapping::nodecart::Nodecart),
    ];
    let instantiation = time_instantiations(&problem, &mappers, repetitions);
    let instantiation_json = Json::Arr(
        instantiation
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("algorithm", Json::str(&t.algorithm)),
                    ("mean_s", Json::Num(t.summary.mean)),
                    ("median_s", Json::Num(t.summary.median)),
                    ("min_s", Json::Num(t.summary.min)),
                    ("n", Json::Num(t.summary.n as f64)),
                ])
            })
            .collect(),
    );
    for t in &instantiation {
        eprintln!(
            "  instantiation {:<16} mean {:.6}s",
            t.algorithm, t.summary.mean
        );
    }

    // --- metric evaluation: streaming vs. CSR ------------------------------
    let dims = dims_create(metric_nodes * 64, 2);
    let metric_problem = MappingProblem::new(
        Dims::new(dims).expect("valid dims"),
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(metric_nodes, 64),
    )
    .expect("consistent instance");
    let mapping = Hyperplane::default()
        .compute(&metric_problem)
        .expect("mapping succeeds");
    let time_of = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repetitions.max(3) {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let streaming_s = time_of(&mut || {
        std::hint::black_box(metrics::evaluate_streaming(
            metric_problem.dims(),
            metric_problem.stencil(),
            false,
            &mapping,
        ));
    });
    let csr_with_build_s = time_of(&mut || {
        let graph = CartGraph::build(metric_problem.dims(), metric_problem.stencil(), false);
        std::hint::black_box(metrics::evaluate(&graph, &mapping));
    });
    let graph = CartGraph::build(metric_problem.dims(), metric_problem.stencil(), false);
    let csr_prebuilt_s = time_of(&mut || {
        std::hint::black_box(metrics::evaluate(&graph, &mapping));
    });
    // sanity: both evaluators agree bit for bit
    assert_eq!(
        metrics::evaluate(&graph, &mapping),
        metrics::evaluate_streaming(
            metric_problem.dims(),
            metric_problem.stencil(),
            false,
            &mapping
        ),
        "streaming and CSR evaluation diverged"
    );
    eprintln!(
        "  metrics p={}: streaming {streaming_s:.6}s, csr+build {csr_with_build_s:.6}s, csr {csr_prebuilt_s:.6}s",
        metric_problem.num_processes()
    );

    // --- multilevel partitioner: parallel vs. sequential --------------------
    let part_problem =
        paper_throughput_instance(if quick { 25 } else { 100 }, StencilKind::NearestNeighbor);
    let cart = CartGraph::build(part_problem.dims(), part_problem.stencil(), false);
    let part_graph = Graph::from_directed_csr(cart.xadj(), cart.adjncy());
    let sizes: Vec<usize> = part_problem.alloc().sizes().to_vec();
    let par_s = time_of(&mut || {
        std::hint::black_box(
            partition(
                &part_graph,
                &PartitionConfig::new(sizes.clone()).with_seed(1),
            )
            .unwrap(),
        );
    });
    let seq_s = time_of(&mut || {
        std::hint::black_box(
            partition(
                &part_graph,
                &PartitionConfig::new(sizes.clone())
                    .with_seed(1)
                    .with_parallel(false),
            )
            .unwrap(),
        );
    });
    eprintln!(
        "  partitioner p={}: parallel {par_s:.6}s, sequential {seq_s:.6}s",
        part_problem.num_processes()
    );

    // --- large-scale partitioning: p = 100_000, single core -----------------
    // The paper targets node-aware mappings at p >= 10^5; the bucket-queue FM
    // keeps the VieM-style baseline usable there.  Skipped with --quick.
    let large = (!quick).then(|| {
        let (nodes, per) = (1000usize, 100usize);
        let dims = dims_create(nodes * per, 2);
        let large_problem = MappingProblem::new(
            Dims::new(dims).expect("valid dims"),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(nodes, per),
        )
        .expect("consistent large instance");
        let cart = CartGraph::build(large_problem.dims(), large_problem.stencil(), false);
        let graph = Graph::from_directed_csr(cart.xadj(), cart.adjncy());
        let sizes: Vec<usize> = large_problem.alloc().sizes().to_vec();
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let start = Instant::now();
            std::hint::black_box(
                partition(
                    &graph,
                    &PartitionConfig::new(sizes.clone())
                        .with_seed(1)
                        .with_parallel(false),
                )
                .unwrap(),
            );
            best = best.min(start.elapsed().as_secs_f64());
        }
        eprintln!(
            "  partitioner p={} (k={nodes}): sequential {best:.6}s",
            large_problem.num_processes()
        );
        (large_problem.num_processes(), nodes, best)
    });

    // --- extreme-scale partitioning: p = 10^6, k = 10^4, single core --------
    // The tentpole scale of the flat-array coarsening rework: a million
    // processes split into ten thousand parts must stay in single-digit
    // seconds on one core (the serve tier's coldest possible miss).  Unlike
    // partitioner_large this section is never skipped: --quick scales the
    // instance down (p = 5*10^4, k = 10^3) so the section stays exercised,
    // and the scale guard on `processes` keeps quick and full documents from
    // being compared against each other.
    let xl = {
        let (nodes, per, reps) = if quick {
            (1000usize, 50usize, 1usize)
        } else {
            (10_000usize, 100usize, 2usize)
        };
        let dims = dims_create(nodes * per, 2);
        let xl_problem = MappingProblem::new(
            Dims::new(dims).expect("valid dims"),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(nodes, per),
        )
        .expect("consistent xl instance");
        let cart = CartGraph::build(xl_problem.dims(), xl_problem.stencil(), false);
        let graph = Graph::from_directed_csr(cart.xadj(), cart.adjncy());
        let sizes: Vec<usize> = xl_problem.alloc().sizes().to_vec();
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            std::hint::black_box(
                partition(
                    &graph,
                    &PartitionConfig::new(sizes.clone())
                        .with_seed(1)
                        .with_parallel(false),
                )
                .unwrap(),
            );
            best = best.min(start.elapsed().as_secs_f64());
        }
        eprintln!(
            "  partitioner p={} (k={nodes}): sequential {best:.6}s",
            xl_problem.num_processes()
        );
        (xl_problem.num_processes(), nodes, best)
    };

    let doc = Json::obj(vec![
        ("schema", Json::str("stencilmap/perf-baseline/v1")),
        ("threads", Json::Num(rayon::current_num_threads() as f64)),
        ("quick", Json::Bool(quick)),
        (
            "instantiation",
            Json::obj(vec![
                ("nodes", Json::Num(figure_nodes as f64)),
                ("processes", Json::Num(problem.num_processes() as f64)),
                ("timings", instantiation_json),
            ]),
        ),
        (
            "metric_evaluation",
            Json::obj(vec![
                (
                    "processes",
                    Json::Num(metric_problem.num_processes() as f64),
                ),
                ("streaming_s", Json::Num(streaming_s)),
                ("csr_including_graph_build_s", Json::Num(csr_with_build_s)),
                ("csr_prebuilt_graph_s", Json::Num(csr_prebuilt_s)),
            ]),
        ),
        (
            "partitioner",
            Json::obj(vec![
                ("processes", Json::Num(part_problem.num_processes() as f64)),
                ("parallel_s", Json::Num(par_s)),
                ("sequential_s", Json::Num(seq_s)),
            ]),
        ),
        (
            "partitioner_large",
            match large {
                Some((p, parts, s)) => Json::obj(vec![
                    ("processes", Json::Num(p as f64)),
                    ("parts", Json::Num(parts as f64)),
                    ("single_core_s", Json::Num(s)),
                ]),
                None => Json::Null,
            },
        ),
        (
            "partitioner_xl",
            Json::obj(vec![
                ("processes", Json::Num(xl.0 as f64)),
                ("parts", Json::Num(xl.1 as f64)),
                ("single_core_s", Json::Num(xl.2)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
