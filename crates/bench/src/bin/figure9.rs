//! Regenerates Figure 9 of the paper: the instantiation (reordering) time of
//! the algorithms on the largest nearest-neighbor instance (N = 100,
//! 48 processes per node), 200 repetitions, outlier removal, mean with a
//! 95% confidence interval.  The VieM-style general graph mapper is included
//! to show the orders-of-magnitude runtime gap reported in Section VI-E.
//!
//! ```text
//! cargo run --release -p stencil-bench --bin figure9
//! cargo run --release -p stencil-bench --bin figure9 -- --quick
//! ```

use stencil_bench::figure9_instance;
use stencil_bench::report::{format_markdown_table, format_seconds};
use stencil_bench::timing::time_instantiations;
use stencil_mapping::baselines::Blocked;
use stencil_mapping::hyperplane::Hyperplane;
use stencil_mapping::kdtree::KdTree;
use stencil_mapping::nodecart::Nodecart;
use stencil_mapping::stencil_strips::StencilStrips;
use stencil_mapping::viem::GraphMapper;
use stencil_mapping::Mapper;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 10 } else { 200 };
    let viem_reps = if quick { 1 } else { 5 };

    let problem = figure9_instance();
    eprintln!(
        "figure9: instantiation time on a {} nearest-neighbor instance, {} repetitions",
        problem.dims(),
        reps
    );

    let fast_mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Hyperplane::default()),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(Nodecart),
        Box::new(Blocked),
    ];
    let mut timings = time_instantiations(&problem, &fast_mappers, reps);

    // the general graph mapper is orders of magnitude slower; measure it with
    // fewer repetitions (the paper omits it from the plot for the same reason)
    let slow: Vec<Box<dyn Mapper>> = vec![Box::new(GraphMapper::with_seed(1))];
    timings.extend(time_instantiations(&problem, &slow, viem_reps));

    println!("# Figure 9 — instantiation time (N = 100, nearest neighbor)\n");
    let table: Vec<Vec<String>> = timings
        .iter()
        .map(|t| {
            vec![
                t.algorithm.clone(),
                format_seconds(t.summary.mean),
                format!("±{}", format_seconds(t.summary.mean_ci95)),
                format_seconds(t.summary.min),
                format_seconds(t.summary.max),
                t.summary.n.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_markdown_table(&["algorithm", "mean", "95% CI", "min", "max", "n"], &table)
    );

    if let (Some(fast), Some(slow)) = (
        timings
            .iter()
            .filter(|t| t.algorithm != "VieM-style" && t.algorithm != "Blocked")
            .map(|t| t.summary.mean)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            }),
        timings
            .iter()
            .find(|t| t.algorithm == "VieM-style")
            .map(|t| t.summary.mean),
    ) {
        println!(
            "\nVieM-style / fastest specialised algorithm runtime ratio: {:.0}x",
            slow / fast
        );
    }
}
