//! Regenerates Figure 6 (N = 50) and Figure 7 (N = 100) of the paper:
//! the `Jsum`/`Jmax` score panels and the speedup of the simulated
//! `MPI_Neighbor_alltoall` exchange over the blocked mapping on the three
//! machine models, for all three stencils and message sizes 1 KiB – 4 MiB.
//!
//! ```text
//! cargo run --release -p stencil-bench --bin figure6_7 -- --nodes 50
//! cargo run --release -p stencil-bench --bin figure6_7 -- --nodes 100 --quick
//! cargo run --release -p stencil-bench --bin figure6_7 -- --nodes 50 --json out.json
//! ```

use stencil_bench::figures::{figure67, Figure67Config};
use stencil_bench::report::json::{Json, ToJson};
use stencil_bench::report::{ascii_bar, format_markdown_table, format_seconds};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes = arg_value(&args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50usize);
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = arg_value(&args, "--json");

    let cfg = if quick {
        Figure67Config {
            nodes,
            ..Figure67Config::quick(nodes)
        }
    } else {
        Figure67Config::paper(nodes)
    };

    eprintln!(
        "figure6_7: N = {nodes}, machines = {:?}, {} message sizes{}",
        cfg.machines
            .iter()
            .map(|m| m.name.clone())
            .collect::<Vec<_>>(),
        cfg.message_sizes.len(),
        if quick { " (quick mode)" } else { "" }
    );

    let (scores, rows) = figure67(&cfg);

    // ---- score panels (left column of the figure) --------------------------
    println!(
        "# Figure {} — mapping scores (N = {nodes}, p/node = 48)\n",
        if nodes == 50 { "6" } else { "7" }
    );
    let mut current_stencil = String::new();
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for s in &scores {
        if s.stencil != current_stencil {
            if !table_rows.is_empty() {
                println!(
                    "{}",
                    format_markdown_table(&["algorithm", "Jsum", "Jmax"], &table_rows)
                );
                table_rows.clear();
            }
            current_stencil = s.stencil.clone();
            println!("## {} stencil\n", s.stencil);
        }
        table_rows.push(vec![
            s.algorithm.clone(),
            s.j_sum.to_string(),
            s.j_max.to_string(),
        ]);
    }
    if !table_rows.is_empty() {
        println!(
            "{}",
            format_markdown_table(&["algorithm", "Jsum", "Jmax"], &table_rows)
        );
    }

    // ---- speedup panels ----------------------------------------------------
    println!("\n# Speedup over the blocked mapping\n");
    for machine in &cfg.machines {
        for stencil in [
            "Nearest neighbor",
            "Nearest neighbor with hops",
            "Component",
        ] {
            let subset: Vec<_> = rows
                .iter()
                .filter(|r| r.machine == machine.name && r.stencil == stencil)
                .collect();
            if subset.is_empty() {
                continue;
            }
            println!("## {} — {} stencil\n", machine.name, stencil);
            let max_speedup = subset.iter().map(|r| r.speedup).fold(1.0f64, f64::max);
            let mut table: Vec<Vec<String>> = Vec::new();
            for r in &subset {
                table.push(vec![
                    r.algorithm.clone(),
                    r.message_size.to_string(),
                    format_seconds(r.mean_time),
                    format_seconds(r.blocked_time),
                    format!("{:.2}x", r.speedup),
                    ascii_bar(r.speedup, max_speedup, 30),
                ]);
            }
            println!(
                "{}",
                format_markdown_table(
                    &[
                        "algorithm",
                        "msg size [B]",
                        "time",
                        "blocked",
                        "speedup",
                        ""
                    ],
                    &table
                )
            );
        }
    }

    if let Some(path) = json_path {
        let payload = Json::obj(vec![
            ("nodes", Json::Num(nodes as f64)),
            ("scores", scores.to_json()),
            ("speedups", rows.to_json()),
        ]);
        std::fs::write(&path, payload.pretty())
            .unwrap_or_else(|e| eprintln!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
