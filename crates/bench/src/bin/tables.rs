//! Regenerates the appendix tables (Tables II–VII) of the paper: the absolute
//! time of the simulated `MPI_Neighbor_alltoall` exchange with 95% confidence
//! intervals, for every stencil, message size and mapping algorithm, on one
//! machine model and node count per invocation.
//!
//! ```text
//! cargo run --release -p stencil-bench --bin tables -- --machine vsc4 --nodes 50      # Table II
//! cargo run --release -p stencil-bench --bin tables -- --machine vsc4 --nodes 100     # Table III
//! cargo run --release -p stencil-bench --bin tables -- --machine supermuc --nodes 50  # Table IV
//! cargo run --release -p stencil-bench --bin tables -- --machine supermuc --nodes 100 # Table V
//! cargo run --release -p stencil-bench --bin tables -- --machine juwels --nodes 50    # Table VI
//! cargo run --release -p stencil-bench --bin tables -- --machine juwels --nodes 100   # Table VII
//! ```

use cluster_sim::Machine;
use stencil_bench::figures::{appendix_table, TableConfig};
use stencil_bench::report::json::ToJson;
use stencil_bench::report::{format_markdown_table, format_seconds};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machine_name = arg_value(&args, "--machine").unwrap_or_else(|| "vsc4".to_string());
    let nodes = arg_value(&args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50usize);
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = arg_value(&args, "--json");

    let machine = match machine_name.to_lowercase().as_str() {
        "vsc4" => Machine::vsc4(),
        "supermuc" | "supermuc-ng" | "smuc" => Machine::supermuc_ng(),
        "juwels" => Machine::juwels(),
        other => {
            eprintln!("unknown machine '{other}', expected vsc4 | supermuc | juwels");
            std::process::exit(2);
        }
    };

    let table_number = match (machine.name.as_str(), nodes) {
        ("VSC4", 50) => "II",
        ("VSC4", 100) => "III",
        ("SuperMUC-NG", 50) => "IV",
        ("SuperMUC-NG", 100) => "V",
        ("JUWELS", 50) => "VI",
        ("JUWELS", 100) => "VII",
        _ => "custom",
    };

    let mut cfg = TableConfig::paper(machine.clone(), nodes);
    if quick {
        cfg.message_sizes = vec![64, 4096, 1 << 19];
        cfg.measurement.repetitions = 20;
    }

    eprintln!(
        "tables: Table {table_number} ({} with N = {nodes}, p/node = 48){}",
        machine.name,
        if quick { " (quick mode)" } else { "" }
    );

    let rows = appendix_table(&cfg);

    println!(
        "# Table {table_number}: MPI_Neighbor_alltoall time on {} (N = {nodes}, p = 48)\n",
        machine.name
    );
    for stencil in [
        "Nearest neighbor",
        "Nearest neighbor with hops",
        "Component",
    ] {
        let subset: Vec<_> = rows.iter().filter(|r| r.stencil == stencil).collect();
        if subset.is_empty() {
            continue;
        }
        println!("## {stencil}\n");
        let algorithms: Vec<String> = subset[0]
            .entries
            .iter()
            .map(|(name, _, _)| name.clone())
            .collect();
        let mut header: Vec<&str> = vec!["size [B]"];
        for a in &algorithms {
            header.push(a.as_str());
        }
        let table: Vec<Vec<String>> = subset
            .iter()
            .map(|r| {
                let mut row = vec![r.message_size.to_string()];
                for (_, mean, ci) in &r.entries {
                    row.push(format!(
                        "{} ±{:.1}%",
                        format_seconds(*mean),
                        ci / mean * 100.0
                    ));
                }
                row
            })
            .collect();
        println!("{}", format_markdown_table(&header, &table));
    }

    if let Some(path) = json_path {
        std::fs::write(&path, rows.to_json().pretty())
            .unwrap_or_else(|e| eprintln!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
