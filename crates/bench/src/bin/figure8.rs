//! Regenerates Figure 8 of the paper: the distribution of the reduction of
//! `Jsum` and `Jmax` over the blocked mapping on the 144-instance set
//! `I = N × P × D`, for the three stencils.
//!
//! ```text
//! cargo run --release -p stencil-bench --bin figure8
//! cargo run --release -p stencil-bench --bin figure8 -- --quick
//! cargo run --release -p stencil-bench --bin figure8 -- --json fig8.json
//! ```

use stencil_bench::figures::{figure8, Figure8Config};
use stencil_bench::report::format_markdown_table;
use stencil_bench::report::json::ToJson;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let cfg = if quick {
        Figure8Config::quick()
    } else {
        Figure8Config::paper()
    };
    eprintln!(
        "figure8: {} instances{}",
        cfg.instances.len(),
        if quick { " (quick mode)" } else { "" }
    );

    let rows = figure8(&cfg);

    println!("# Figure 8 — reduction over the blocked mapping (lower is better)\n");
    for stencil in [
        "Nearest neighbor",
        "Nearest neighbor with hops",
        "Component",
    ] {
        let subset: Vec<_> = rows.iter().filter(|r| r.stencil == stencil).collect();
        if subset.is_empty() {
            continue;
        }
        println!("## {stencil} stencil\n");
        let table: Vec<Vec<String>> = subset
            .iter()
            .map(|r| {
                vec![
                    format!("{} {}", r.algorithm, r.metric),
                    format!("{:.3}", r.median),
                    format!("±{:.3}", r.median_ci95),
                    format!("{:.3}", r.q1),
                    format!("{:.3}", r.q3),
                    r.n.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            format_markdown_table(
                &["algorithm / metric", "median", "95% CI", "Q1", "Q3", "n"],
                &table
            )
        );
    }

    // Statistical statement of Section VI-C: the median Jsum reduction of
    // Hyperplane and Stencil Strips is better than Nodecart's when the CIs do
    // not overlap.
    println!("## Median comparison vs. Nodecart (Jsum)\n");
    for stencil in [
        "Nearest neighbor",
        "Nearest neighbor with hops",
        "Component",
    ] {
        let get = |alg: &str| {
            rows.iter()
                .find(|r| r.stencil == stencil && r.algorithm == alg && r.metric == "Jsum")
        };
        if let (Some(nc), Some(hp), Some(ss)) =
            (get("Nodecart"), get("Hyperplane"), get("Stencil Strips"))
        {
            for (name, row) in [("Hyperplane", hp), ("Stencil Strips", ss)] {
                let separated = (row.median + row.median_ci95) < (nc.median - nc.median_ci95);
                println!(
                    "- {stencil}: {name} median {:.3} vs Nodecart {:.3} -> {}",
                    row.median,
                    nc.median,
                    if separated {
                        "statistically better (CIs do not overlap)"
                    } else {
                        "no statistical separation"
                    }
                );
            }
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, rows.to_json().pretty())
            .unwrap_or_else(|e| eprintln!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
