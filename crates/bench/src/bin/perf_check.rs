//! CI perf-regression gate: compares freshly measured perf documents against
//! the committed baselines and fails when any gated metric regresses beyond
//! the allowed budget.  The gated entries are defined once in
//! [`stencil_bench::perfcheck`] (`GATED_PARTITIONER_METRICS`,
//! `GATED_SERVE_METRICS`).
//!
//! ```text
//! cargo run --release -p stencil-bench --bin perf_check -- \
//!     --baseline BENCH_mapping.json --current BENCH_mapping.current.json \
//!     [--serve-baseline BENCH_serve.json --serve-current BENCH_serve.current.json] \
//!     [--max-regression 0.25] [--serve-max-regression 0.4]
//! ```
//!
//! When `$GITHUB_STEP_SUMMARY` is set, a markdown table of every gated entry
//! (baseline vs current) is appended to it.

use stencil_bench::arg_value;
use stencil_bench::perfcheck::{check_partitioner, check_serve, summary_markdown, CheckOutcome};

/// Shape of the per-document comparison functions in
/// [`stencil_bench::perfcheck`].
type CheckFn = dyn Fn(&str, &str, f64) -> Result<Vec<CheckOutcome>, String>;

fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_check: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = || -> ! {
        eprintln!(
            "usage: perf_check --baseline <json> --current <json> \
             [--serve-baseline <json> --serve-current <json>] \
             [--max-regression 0.25] [--serve-max-regression 0.4]"
        );
        std::process::exit(2);
    };
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| usage());
    let current_path = arg_value(&args, "--current").unwrap_or_else(|| usage());
    let max_regression: f64 = arg_value(&args, "--max-regression")
        .map(|v| v.parse().expect("--max-regression must be a number"))
        .unwrap_or(0.25);
    // Throughput measurements on shared CI runners are noisier than the
    // best-of-N partitioner timings, so the serve gate gets a wider default.
    let serve_max_regression: f64 = arg_value(&args, "--serve-max-regression")
        .map(|v| v.parse().expect("--serve-max-regression must be a number"))
        .unwrap_or(0.4);
    let serve_baseline_path = arg_value(&args, "--serve-baseline");
    let serve_current_path = arg_value(&args, "--serve-current");
    if serve_baseline_path.is_some() != serve_current_path.is_some() {
        usage();
    }

    let mut all: Vec<CheckOutcome> = Vec::new();
    let run = |label: &str,
               baseline_path: &str,
               current_path: &str,
               budget: f64,
               check: &CheckFn|
     -> Vec<CheckOutcome> {
        let baseline = read_or_die(baseline_path);
        let current = read_or_die(current_path);
        match check(&baseline, &current, budget) {
            Ok(outcomes) => {
                eprintln!(
                    "perf_check[{label}]: {current_path} vs {baseline_path} (budget {:.0}%)",
                    budget * 100.0
                );
                for o in &outcomes {
                    eprintln!("  {}", o.render());
                }
                outcomes
            }
            Err(msg) => {
                eprintln!("perf_check[{label}]: {msg}");
                std::process::exit(2);
            }
        }
    };

    all.extend(run(
        "partitioner",
        &baseline_path,
        &current_path,
        max_regression,
        &check_partitioner,
    ));
    if let (Some(sb), Some(sc)) = (&serve_baseline_path, &serve_current_path) {
        all.extend(run("serve", sb, sc, serve_max_regression, &check_serve));
    }

    // one summary table over *all* gated entries, for $GITHUB_STEP_SUMMARY
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        let table = format!("## Perf gate\n\n{}\n", summary_markdown(&all));
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary_path)
        {
            Ok(mut f) => {
                if let Err(e) = f.write_all(table.as_bytes()) {
                    eprintln!("perf_check: cannot append to {summary_path}: {e}");
                }
            }
            Err(e) => eprintln!("perf_check: cannot open {summary_path}: {e}"),
        }
    }

    if all.iter().any(|o| !o.ok) {
        eprintln!("perf_check: FAILED — gated metrics regressed beyond the budget");
        std::process::exit(1);
    }
    eprintln!("perf_check: ok ({} gated metrics)", all.len());
}
