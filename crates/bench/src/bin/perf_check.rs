//! CI perf-regression gate: compares a freshly measured `BENCH_mapping.json`
//! against the committed baseline and fails when multilevel partitioning has
//! regressed beyond the allowed budget.
//!
//! ```text
//! cargo run --release -p stencil-bench --bin perf_check -- \
//!     --baseline BENCH_mapping.json --current BENCH_mapping.current.json \
//!     [--max-regression 0.25]
//! ```

use stencil_bench::perfcheck::check_partitioner;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| {
        eprintln!("usage: perf_check --baseline <json> --current <json> [--max-regression 0.25]");
        std::process::exit(2);
    });
    let current_path = arg_value(&args, "--current").unwrap_or_else(|| {
        eprintln!("usage: perf_check --baseline <json> --current <json> [--max-regression 0.25]");
        std::process::exit(2);
    });
    let max_regression: f64 = arg_value(&args, "--max-regression")
        .map(|v| v.parse().expect("--max-regression must be a number"))
        .unwrap_or(0.25);

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_check: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);

    match check_partitioner(&baseline, &current, max_regression) {
        Ok(outcomes) => {
            eprintln!(
                "perf_check: {} vs {} (budget {:.0}%)",
                current_path,
                baseline_path,
                max_regression * 100.0
            );
            let mut failed = false;
            for o in &outcomes {
                eprintln!("  {}", o.render());
                failed |= !o.ok;
            }
            if failed {
                eprintln!("perf_check: FAILED — partitioner regressed beyond the budget");
                std::process::exit(1);
            }
            eprintln!("perf_check: ok");
        }
        Err(msg) => {
            eprintln!("perf_check: {msg}");
            std::process::exit(2);
        }
    }
}
