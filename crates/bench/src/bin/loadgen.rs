//! Emits `BENCH_serve.json` — the perf-trajectory baseline of the caching
//! mapping service: throughput and latency percentiles of synthetic request
//! mixes replayed against an in-process [`MappingService`].
//!
//! ```text
//! cargo run --release -p stencil-bench --bin loadgen -- [--quick] [--out BENCH_serve.json]
//! ```
//!
//! The replayed mixes (all deterministic):
//!
//! * **cache_hit** — one cold p = 4800 VieM-style (multilevel) request, then
//!   the same request repeated: every repeat is a canonical cache hit,
//!   served without touching the engine.  The cold-vs-hit ratio is the
//!   headline number of the service.
//! * **cache_hit_compact** — the same hit stream with
//!   `"encoding":"compact"`: the node table rides as one base64
//!   delta-varint string instead of a 4800-element JSON array.
//! * **cache_hit_nomap** — the same hit stream with `want_mapping: false`
//!   (cost-only responses).
//! * **new_rank_of** — point lookups (`"query":"new_rank_of"`) against the
//!   warm entry: the response carries three nodes, not 4800.
//! * **cache_miss** — a sweep of distinct instances (every request a miss),
//!   measuring the engine + cache-insert path.
//! * **mixed** — 90% hits / 10% misses interleaved, the shape "Mapping
//!   Matters" reports for recurring job configurations.
//! * **batch** — `{"batch": […]}` lines of hit requests, measuring the
//!   batched path (in-order per-item processing, one parse/serialise per
//!   line).
//! * **persistence** — the p = 4800 entry plus a 255-entry fleet are
//!   computed into a persisted service, the service restarted, and the
//!   request re-issued: the restart must answer it as a cache hit (no
//!   recomputation), and the reload throughput (entries/s replayed from the
//!   log) is a gated metric.
//! * **write_amplification** — sustained recency-changing hit traffic
//!   against a persisted service with a small online-compaction threshold:
//!   reports how many records and flushes the traffic cost and proves the
//!   log stayed bounded across compaction cycles.
//! * **tcp_hit / routed_hit / routed_replica_hit** — the p = 4800
//!   cost-only hit stream replayed over real TCP: once against a single
//!   `stencil-serve --listen` process, once through `stencil-serve
//!   --route` fronting two backend processes, and once through a
//!   `--replicas 2` router fronting three backends (every miss written
//!   through to both replicas, reads from the primary).
//!   Requests are pipelined on one connection for the throughput number; a
//!   sequential round-trip pass supplies the latency percentiles.  These
//!   sections spawn the real server binary — build it first
//!   (`cargo build --release -p stencil-serve`), point at another build
//!   with `--serve-bin PATH`, or skip them with `--no-route`.
//!
//! With `--flood ADDR` the binary instead acts as the overload smoke
//! client: it opens `--conns N` simultaneous TCP connections against a
//! running `stencil-serve --listen` and verifies that excess connections
//! are shed with the well-formed, newline-terminated overloaded error line
//! while admitted ones are served.
//!
//! With `--send ADDR` it is a transcript replay client: request lines are
//! read from stdin, pipelined over one TCP connection, and the response
//! lines are echoed to stdout 1:1 — CI uses this to prove the TCP frontend
//! answers a request file byte-identically under both poll backends (and
//! identically to `--stdin` mode).
//!
//! With `--idle ADDR --pid P` it is the idle-cost smoke client: it parks
//! `--conns N` keep-alive connections (each proven live with one request
//! first) against a running server, then samples the server's CPU time from
//! `/proc/P/stat` over `--secs S` and fails if the idle fleet cost more
//! than `--cpu-budget` seconds of CPU — the epoll frontend's "idle
//! connections cost zero" guarantee, checked against the real binary.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stencil_bench::report::json::Json;
use stencil_serve::service::{MappingService, ServiceConfig};

/// Latency percentile over raw samples (nearest-rank on the sorted list).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays `lines` one by one, asserting every response line succeeds, and
/// returns the per-line latencies in seconds (in replay order).
fn replay(service: &MappingService, lines: &[String]) -> Vec<f64> {
    let mut latencies = Vec::with_capacity(lines.len());
    for line in lines {
        let start = Instant::now();
        let response = service.handle_line(line);
        latencies.push(start.elapsed().as_secs_f64());
        assert!(
            !response.contains("\"status\":\"error\""),
            "loadgen request failed: {line} -> {response}"
        );
        std::hint::black_box(&response);
    }
    latencies
}

/// Summarises one mix as a flat JSON section.
fn section(latencies: &[f64], extra: Vec<(&str, Json)>) -> Json {
    let total: f64 = latencies.iter().sum();
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut fields = vec![
        ("requests", Json::Num(latencies.len() as f64)),
        ("throughput_rps", Json::Num(latencies.len() as f64 / total)),
        ("p50_s", Json::Num(percentile(&sorted, 0.50))),
        ("p99_s", Json::Num(percentile(&sorted, 0.99))),
        ("total_s", Json::Num(total)),
    ];
    fields.extend(extra);
    Json::obj(fields)
}

/// Overload smoke client: holds `conns` simultaneous connections against a
/// live server, writes one request per connection, and classifies the first
/// response line of each.  With more connections than the server's
/// `--max-conns` this must observe both served and shed connections.
fn flood(addr: &str, conns: usize) -> i32 {
    let request = "{\"dims\":[12,8],\"nodes\":8,\"want_mapping\":false}\n";
    let mut streams = Vec::with_capacity(conns);
    for i in 0..conns {
        match TcpStream::connect(addr) {
            Ok(s) => streams.push(s),
            Err(e) => {
                eprintln!("flood: connect {i} to {addr} failed: {e}");
                break;
            }
        }
    }
    let (mut served, mut shed, mut torn, mut dead) = (0usize, 0usize, 0usize, 0usize);
    for stream in &mut streams {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        // A shed connection may already be closed server-side; the write can
        // fail with EPIPE while the overloaded line is still readable.
        let _ = stream.write_all(request.as_bytes());
        let mut line = String::new();
        let mut reader = BufReader::new(&mut *stream);
        match reader.read_line(&mut line) {
            // every shed line must arrive whole: newline-terminated, in one
            // piece (the server writes it as a single buffered write)
            Ok(n) if n > 0 && line.contains("\"error\":\"overloaded\"") => {
                if line.ends_with('\n') {
                    shed += 1;
                } else {
                    eprintln!("flood: torn shed line (no trailing newline): {line:?}");
                    torn += 1;
                }
            }
            Ok(n) if n > 0 && line.contains("\"status\":\"ok\"") => served += 1,
            _ => dead += 1,
        }
    }
    eprintln!(
        "flood: {} connections -> {served} served, {shed} shed, {torn} torn, {dead} dead",
        streams.len()
    );
    println!(
        "{{\"connections\":{},\"served\":{served},\"shed\":{shed},\"torn\":{torn},\"dead\":{dead}}}",
        streams.len()
    );
    if torn > 0 {
        eprintln!("flood: FAILED — shed lines must be newline-terminated");
        return 1;
    }
    if served == 0 || shed == 0 {
        eprintln!("flood: FAILED — expected both served and shed connections");
        return 1;
    }
    0
}

/// Transcript replay client: pipelines every stdin line over one TCP
/// connection and echoes exactly one response line per request line to
/// stdout.  Blank lines and `#` comments are skipped (matching the golden
/// transcript format); the server answers every other line — malformed
/// ones with an error line — so the mapping stays 1:1.
fn send(addr: &str) -> i32 {
    let mut input = String::new();
    if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut input) {
        eprintln!("send: reading stdin: {e}");
        return 1;
    }
    let requests: Vec<&str> = input
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .collect();
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("send: connect to {addr} failed: {e}");
            return 1;
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    for line in &requests {
        if let Err(e) = stream.write_all(format!("{line}\n").as_bytes()) {
            eprintln!("send: write failed: {e}");
            return 1;
        }
    }
    let mut reader = BufReader::new(&mut stream);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for i in 0..requests.len() {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                if out.write_all(line.as_bytes()).is_err() {
                    return 1;
                }
            }
            other => {
                eprintln!(
                    "send: response {} of {} missing: {other:?}",
                    i + 1,
                    requests.len()
                );
                return 1;
            }
        }
    }
    0
}

/// A spawned `stencil-serve` process and the address it bound, for the
/// TCP-path sections.  Killed on drop.
struct ServeProc {
    child: std::process::Child,
    addr: String,
}

impl ServeProc {
    /// Spawns `bin` with `--listen 127.0.0.1:0` plus `extra_args` and waits
    /// for the "listening on" banner on stderr.  The rest of stderr drains
    /// in a background thread so the child can never block on the pipe.
    fn spawn(bin: &str, extra_args: &[&str]) -> Result<ServeProc, String> {
        let mut child = std::process::Command::new(bin)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawning {bin}: {e}"))?;
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            match stderr.read_line(&mut line) {
                Ok(0) => return Err(format!("{bin} exited before printing its address")),
                Ok(_) => {
                    if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
                        break rest.to_string();
                    }
                }
                Err(e) => return Err(format!("reading {bin} stderr: {e}")),
            }
        };
        std::thread::spawn(move || {
            let mut rest = String::new();
            let _ = std::io::Read::read_to_string(&mut stderr, &mut rest);
        });
        Ok(ServeProc { child, addr })
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pipelines `count` copies of `line` over one connection to `addr`
/// (writer thread; responses read on the caller) and returns the wall time
/// for the whole window.  Every response must be an `"ok"` line.
fn tcp_pipeline(addr: &str, line: &str, count: usize) -> Result<f64, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let payload = format!("{line}\n");
    let start = Instant::now();
    let w = std::thread::spawn(move || -> Result<(), String> {
        for _ in 0..count {
            writer
                .write_all(payload.as_bytes())
                .map_err(|e| format!("pipelined write: {e}"))?;
        }
        Ok(())
    });
    let mut reader = BufReader::new(stream);
    for i in 0..count {
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(n) if n > 0 => {
                if !reply.contains("\"status\":\"ok\"") {
                    return Err(format!("pipelined response {i}: {reply}"));
                }
            }
            other => return Err(format!("pipelined response {i} missing: {other:?}")),
        }
    }
    let wall = start.elapsed().as_secs_f64();
    w.join().unwrap()?;
    Ok(wall)
}

/// Sequential round-trip latencies of `count` copies of `line` (one
/// in-flight request at a time), for the percentile columns.
fn tcp_roundtrips(addr: &str, line: &str, count: usize) -> Result<Vec<f64>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let payload = format!("{line}\n");
    let mut latencies = Vec::with_capacity(count);
    for i in 0..count {
        let start = Instant::now();
        stream
            .write_all(payload.as_bytes())
            .map_err(|e| format!("round-trip write {i}: {e}"))?;
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(n) if n > 0 && reply.contains("\"status\":\"ok\"") => {
                latencies.push(start.elapsed().as_secs_f64());
            }
            other => {
                return Err(format!(
                    "round-trip response {i} failed: {other:?} {reply:?}"
                ))
            }
        }
    }
    Ok(latencies)
}

/// One TCP section (`tcp_hit` or `routed_hit`): pipelined throughput plus
/// sequential-round-trip percentiles of the p = 4800 cost-only hit stream.
fn tcp_section(
    addr: &str,
    line: &str,
    pipelined: usize,
    roundtrips: usize,
    extra: Vec<(&str, Json)>,
) -> Result<Json, String> {
    // one request warms the entry (and proves the path end to end)
    let first = tcp_roundtrips(addr, line, 1)?;
    drop(first);
    let wall = tcp_pipeline(addr, line, pipelined)?;
    let latencies = tcp_roundtrips(addr, line, roundtrips)?;
    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut fields = vec![
        ("requests", Json::Num(pipelined as f64)),
        ("throughput_rps", Json::Num(pipelined as f64 / wall)),
        ("p50_s", Json::Num(percentile(&sorted, 0.50))),
        ("p99_s", Json::Num(percentile(&sorted, 0.99))),
        ("total_s", Json::Num(wall)),
    ];
    fields.extend(extra);
    Ok(Json::obj(fields))
}

/// Total CPU time (user + system) of `pid` in clock ticks, read from
/// `/proc/<pid>/stat`.  The command name (field 2) may itself contain
/// spaces, so fields are counted from the closing parenthesis.
fn cpu_ticks(pid: u32) -> Option<u64> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let after_comm = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    // stat(5): utime and stime are fields 14 and 15 (1-based); the slice
    // after ')' starts at field 3 (state)
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// Idle-cost smoke client: parks `conns` proven-live keep-alive connections
/// against a running server and asserts the server's CPU time over `secs`
/// stays within `cpu_budget` seconds.  With the epoll frontend the parked
/// fleet costs nothing; the threadpoll frontend pays a poll pass per
/// connection per millisecond, which this smoke is sized to catch.
fn idle(addr: &str, conns: usize, pid: u32, secs: f64, cpu_budget: f64) -> i32 {
    let request = "{\"dims\":[12,8],\"nodes\":8,\"want_mapping\":false}\n";
    let mut streams = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("idle: connect {i} to {addr} failed: {e}");
                return 1;
            }
        };
        // one served request proves the connection is admitted and live
        // before it goes idle
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        if stream.write_all(request.as_bytes()).is_err() {
            eprintln!("idle: connection {i} rejected its warmup request");
            return 1;
        }
        let mut line = String::new();
        match BufReader::new(&mut stream).read_line(&mut line) {
            Ok(n) if n > 0 && line.contains("\"status\":\"ok\"") => {}
            other => {
                eprintln!("idle: connection {i} warmup failed: {other:?} {line:?}");
                return 1;
            }
        }
        streams.push(stream);
    }
    // let the server park the now-silent fleet before sampling
    std::thread::sleep(Duration::from_millis(300));
    let Some(before) = cpu_ticks(pid) else {
        eprintln!("idle: cannot read /proc/{pid}/stat (Linux only)");
        return 1;
    };
    std::thread::sleep(Duration::from_secs_f64(secs));
    let Some(after) = cpu_ticks(pid) else {
        eprintln!("idle: server {pid} vanished mid-measurement");
        return 1;
    };
    // CLK_TCK is 100 on every Linux configuration this repo targets
    let cpu_s = (after - before) as f64 / 100.0;
    eprintln!(
        "idle: {} idle connections for {secs}s -> {cpu_s:.3}s server CPU \
         (budget {cpu_budget}s)",
        streams.len()
    );
    println!(
        "{{\"connections\":{},\"window_s\":{secs},\"server_cpu_s\":{cpu_s},\"cpu_budget_s\":{cpu_budget}}}",
        streams.len()
    );
    if cpu_s > cpu_budget {
        eprintln!("idle: FAILED — idle connections are burning CPU");
        return 1;
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(addr) = stencil_bench::arg_value(&args, "--flood") {
        let conns = stencil_bench::arg_value(&args, "--conns")
            .map(|v| v.parse::<usize>().expect("--conns expects a number"))
            .unwrap_or(16);
        std::process::exit(flood(&addr, conns));
    }
    if let Some(addr) = stencil_bench::arg_value(&args, "--send") {
        std::process::exit(send(&addr));
    }
    if let Some(addr) = stencil_bench::arg_value(&args, "--idle") {
        let conns = stencil_bench::arg_value(&args, "--conns")
            .map(|v| v.parse::<usize>().expect("--conns expects a number"))
            .unwrap_or(64);
        let pid = stencil_bench::arg_value(&args, "--pid")
            .map(|v| v.parse::<u32>().expect("--pid expects a process id"))
            .expect("--idle requires --pid SERVER_PID");
        let secs = stencil_bench::arg_value(&args, "--secs")
            .map(|v| v.parse::<f64>().expect("--secs expects seconds"))
            .unwrap_or(2.0);
        let cpu_budget = stencil_bench::arg_value(&args, "--cpu-budget")
            .map(|v| v.parse::<f64>().expect("--cpu-budget expects seconds"))
            .unwrap_or(0.2);
        std::process::exit(idle(&addr, conns, pid, secs, cpu_budget));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path =
        stencil_bench::arg_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let hit_requests = if quick { 200 } else { 2000 };
    let miss_requests = if quick { 12 } else { 48 };
    let mixed_requests = if quick { 100 } else { 500 };
    let batch_lines = if quick { 10 } else { 50 };
    let batch_size = 32usize;

    eprintln!(
        "loadgen: threads = {}, quick = {quick}",
        rayon::current_num_threads()
    );
    let service = MappingService::new(&ServiceConfig::default());

    // --- cache_hit: cold p=4800 multilevel, then pure hits ------------------
    // The paper's largest throughput instance (100 nodes x 48 procs on a
    // 75 x 64 grid) through the expensive VieM-style pipeline: the worst
    // case the cache absorbs.
    let headline = r#"{"id":0,"dims":[75,64],"nodes":100,"algorithm":"viem","seed":1}"#.to_string();
    let cold_start = Instant::now();
    let cold_response = service.handle_line(&headline);
    let cold_s = cold_start.elapsed().as_secs_f64();
    assert!(
        cold_response.contains("\"cached\":false"),
        "first request must miss"
    );
    let hit_lines: Vec<String> = vec![headline.clone(); hit_requests];
    let hit_latencies = replay(&service, &hit_lines);
    let mut hit_sorted = hit_latencies.clone();
    hit_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let hit_p50 = percentile(&hit_sorted, 0.50);
    let speedup = cold_s / hit_p50;
    eprintln!(
        "  cache_hit p=4800 (viem): cold {cold_s:.6}s, hit p50 {hit_p50:.6}s \
         ({speedup:.0}x), {:.0} req/s",
        hit_latencies.len() as f64 / hit_latencies.iter().sum::<f64>()
    );

    // --- cache_hit_compact: the same hits, compact node-table encoding ------
    let compact_line =
        r#"{"id":0,"dims":[75,64],"nodes":100,"algorithm":"viem","seed":1,"encoding":"compact"}"#
            .to_string();
    let compact_lines: Vec<String> = vec![compact_line; hit_requests];
    let compact_latencies = replay(&service, &compact_lines);
    eprintln!(
        "  cache_hit_compact: {:.0} req/s",
        compact_latencies.len() as f64 / compact_latencies.iter().sum::<f64>()
    );

    // --- cache_hit_nomap: the same hits, cost-only responses ----------------
    let nomap_line =
        r#"{"id":0,"dims":[75,64],"nodes":100,"algorithm":"viem","seed":1,"want_mapping":false}"#
            .to_string();
    let nomap_lines: Vec<String> = vec![nomap_line; hit_requests];
    let nomap_latencies = replay(&service, &nomap_lines);
    eprintln!(
        "  cache_hit_nomap: {:.0} req/s",
        nomap_latencies.len() as f64 / nomap_latencies.iter().sum::<f64>()
    );

    // --- new_rank_of: point lookups against the warm entry ------------------
    let point_lines: Vec<String> = (0..hit_requests)
        .map(|i| {
            let r = (i * 37) % 4800; // deterministic spread over the grid
            format!(
                r#"{{"id":{i},"dims":[75,64],"nodes":100,"algorithm":"viem","seed":1,"query":"new_rank_of","ranks":[{r},{},{}]}}"#,
                (r + 1600) % 4800,
                (r + 3200) % 4800
            )
        })
        .collect();
    let point_latencies = replay(&service, &point_lines);
    eprintln!(
        "  new_rank_of (3 ranks/query): {:.0} req/s",
        point_latencies.len() as f64 / point_latencies.iter().sum::<f64>()
    );

    // --- cache_miss: every request a distinct instance ----------------------
    // Distinct (nodes, grid) pairs through Hyperplane: measures the
    // canonicalize + engine + insert path.
    let miss_lines: Vec<String> = (0..miss_requests)
        .map(|i| {
            let nodes = 8 + i; // unique node count => unique dims and alloc
            format!(r#"{{"id":{i},"dims":[{nodes},12],"nodes":{nodes}}}"#)
        })
        .collect();
    let miss_latencies = replay(&service, &miss_lines);
    eprintln!(
        "  cache_miss (hyperplane, distinct instances): {:.0} req/s",
        miss_latencies.len() as f64 / miss_latencies.iter().sum::<f64>()
    );

    // --- mixed: 90% hits, 10% misses ----------------------------------------
    let mixed_service = MappingService::new(&ServiceConfig::default());
    let warm = r#"{"dims":[50,48],"nodes":50,"algorithm":"hyperplane"}"#.to_string();
    mixed_service.handle_line(&warm);
    let mixed_lines: Vec<String> = (0..mixed_requests)
        .map(|i| {
            if i % 10 == 9 {
                // a fresh instance: guaranteed miss
                let nodes = 200 + i;
                format!(r#"{{"dims":[{nodes},12],"nodes":{nodes}}}"#)
            } else {
                warm.clone()
            }
        })
        .collect();
    let mixed_latencies = replay(&mixed_service, &mixed_lines);
    let mixed_stats = mixed_service.cache_stats();
    let hit_fraction = mixed_stats.hits as f64 / (mixed_stats.hits + mixed_stats.misses) as f64;
    eprintln!(
        "  mixed (90/10): {:.0} req/s, measured hit rate {hit_fraction:.2}",
        mixed_latencies.len() as f64 / mixed_latencies.iter().sum::<f64>()
    );

    // --- batch: lines of `batch_size` hit requests --------------------------
    let batch_item = r#"{"dims":[50,48],"nodes":50,"algorithm":"kdtree"}"#;
    let batch_line = format!(
        r#"{{"batch":[{}]}}"#,
        vec![batch_item; batch_size].join(",")
    );
    service.handle_line(&batch_line); // warm the entry
    let batch_line_vec: Vec<String> = vec![batch_line; batch_lines];
    let batch_latencies = replay(&service, &batch_line_vec);
    let batch_total: f64 = batch_latencies.iter().sum();
    eprintln!(
        "  batch (x{batch_size} hits/line): {:.0} req/s",
        (batch_lines * batch_size) as f64 / batch_total
    );

    // --- persistence: restart answers the expensive entry as a hit ----------
    // The headline entry plus a 255-entry fleet of small instances: the
    // reload replays all 256 log records, so entries/s is a real replay
    // throughput, not a single-record open.  The fleet size is identical in
    // --quick and full runs so the perf gate's scale guard always matches.
    let persist_entries = 256usize;
    let persist_path =
        std::env::temp_dir().join(format!("stencil-serve-loadgen-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&persist_path);
    let persist_cfg = ServiceConfig {
        persist_path: Some(persist_path.clone()),
        ..ServiceConfig::default()
    };
    {
        let persisted = MappingService::open(&persist_cfg).expect("persistence setup");
        let warm = persisted.handle_line(&headline);
        assert!(warm.contains("\"cached\":false"));
        for n in 2..(persist_entries + 1) {
            let line = format!(r#"{{"dims":[{n},4],"nodes":{n},"want_mapping":false}}"#);
            let response = persisted.handle_line(&line);
            assert!(
                !response.contains("\"status\":\"error\""),
                "fleet fill: {response}"
            );
        }
        // dropping flushes the write-behind log
    }
    let reload_start = Instant::now();
    let restarted = MappingService::open(&persist_cfg).expect("persistence reload");
    let reload_s = reload_start.elapsed().as_secs_f64();
    let report = restarted.load_report();
    assert_eq!(
        (report.entries, report.skipped),
        (persist_entries, 0),
        "reload must replay the whole fleet"
    );
    let reload_entries_per_s = report.entries as f64 / reload_s;
    let hit_start = Instant::now();
    let after = restarted.handle_line(&headline);
    let restart_hit_s = hit_start.elapsed().as_secs_f64();
    assert!(
        after.contains("\"cached\":true"),
        "restart must answer the persisted entry as a hit: {after}"
    );
    assert_eq!(
        restarted.cache_stats().misses,
        0,
        "the engine must not recompute after a restart"
    );
    let _ = std::fs::remove_file(&persist_path);
    eprintln!(
        "  persistence: reload {reload_s:.6}s ({persist_entries} entries, \
         {reload_entries_per_s:.0}/s), warm hit after restart \
         {restart_hit_s:.6}s (vs {cold_s:.6}s cold recompute)"
    );

    // --- write_amplification: recency traffic vs a bounded log --------------
    // Alternating hits between two keys in the same (single) shard flip the
    // MRU slot every request, so each hit appends a touch record; with a
    // small online-compaction threshold the log must stay bounded no matter
    // how long the traffic runs.  Reported counters come from the
    // persistence worker itself.
    let wa_requests = if quick { 500 } else { 5000 };
    let wa_path = std::env::temp_dir().join(format!(
        "stencil-serve-loadgen-wa-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wa_path);
    let wa_cfg = ServiceConfig {
        persist_path: Some(wa_path.clone()),
        compact_bytes: 32 * 1024,
        cache_shards: 1,
        ..ServiceConfig::default()
    };
    let wa_service = MappingService::open(&wa_cfg).expect("write-amplification setup");
    let wa_a = r#"{"dims":[20,12],"nodes":10,"want_mapping":false}"#.to_string();
    let wa_b = r#"{"dims":[24,10],"nodes":12,"want_mapping":false}"#.to_string();
    wa_service.handle_line(&wa_a);
    wa_service.handle_line(&wa_b);
    let wa_lines: Vec<String> = (0..wa_requests)
        .map(|i| {
            if i % 2 == 0 {
                wa_a.clone()
            } else {
                wa_b.clone()
            }
        })
        .collect();
    let wa_latencies = replay(&wa_service, &wa_lines);
    wa_service.flush_persistence();
    let wa_stats = wa_service
        .persist_stats()
        .expect("write-amplification stats");
    let wa_log_bytes = std::fs::metadata(&wa_path).map(|m| m.len()).unwrap_or(0);
    drop(wa_service);
    let _ = std::fs::remove_file(&wa_path);
    eprintln!(
        "  write_amplification: {wa_requests} hits -> {} records, {} flushes, \
         {} compactions, final log {wa_log_bytes} bytes",
        wa_stats.appended, wa_stats.flushes, wa_stats.compactions
    );

    // --- tcp_hit / routed_hit: the hit stream over real sockets -------------
    // The same cost-only hit line, but answered by the real binary over
    // TCP: first by one backend directly, then through the consistent-hash
    // router fronting two backends.  The delta between the two sections is
    // the router's forwarding overhead.
    let mut net_sections: Vec<(&str, Json)> = Vec::new();
    if !args.iter().any(|a| a == "--no-route") {
        let serve_bin = stencil_bench::arg_value(&args, "--serve-bin").unwrap_or_else(|| {
            let sibling = std::env::current_exe()
                .ok()
                .and_then(|p| p.parent().map(|d| d.join("stencil-serve")));
            match sibling {
                Some(p) if p.exists() => p.to_string_lossy().into_owned(),
                _ => {
                    eprintln!(
                        "loadgen: stencil-serve binary not found next to loadgen; build it \
                         (`cargo build --release -p stencil-serve`), pass --serve-bin PATH, \
                         or skip the TCP sections with --no-route"
                    );
                    std::process::exit(1);
                }
            }
        });
        let net_line = r#"{"id":0,"dims":[75,64],"nodes":100,"algorithm":"viem","seed":1,"want_mapping":false}"#;
        let pipelined = if quick { 500 } else { 5000 };
        let roundtrips = if quick { 100 } else { 500 };
        let net = (|| -> Result<(), String> {
            let single = ServeProc::spawn(&serve_bin, &[])?;
            let tcp = tcp_section(
                &single.addr,
                net_line,
                pipelined,
                roundtrips,
                vec![("processes", Json::Num(4800.0))],
            )?;
            drop(single);
            let b1 = ServeProc::spawn(&serve_bin, &[])?;
            let b2 = ServeProc::spawn(&serve_bin, &[])?;
            let route = format!("{},{}", b1.addr, b2.addr);
            let router = ServeProc::spawn(&serve_bin, &["--route", &route])?;
            let routed = tcp_section(
                &router.addr,
                net_line,
                pipelined,
                roundtrips,
                vec![
                    ("processes", Json::Num(4800.0)),
                    ("backends", Json::Num(2.0)),
                ],
            )?;
            drop(router);
            drop(b1);
            drop(b2);
            let b1 = ServeProc::spawn(&serve_bin, &[])?;
            let b2 = ServeProc::spawn(&serve_bin, &[])?;
            let b3 = ServeProc::spawn(&serve_bin, &[])?;
            let route = format!("{},{},{}", b1.addr, b2.addr, b3.addr);
            let router = ServeProc::spawn(&serve_bin, &["--route", &route, "--replicas", "2"])?;
            let replicated = tcp_section(
                &router.addr,
                net_line,
                pipelined,
                roundtrips,
                vec![
                    ("processes", Json::Num(4800.0)),
                    ("backends", Json::Num(3.0)),
                    ("replicas", Json::Num(2.0)),
                ],
            )?;
            for (name, sec) in [
                ("tcp_hit", &tcp),
                ("routed_hit", &routed),
                ("routed_replica_hit", &replicated),
            ] {
                eprintln!("  {name}: {}", sec.pretty().replace(['\n', ' '], ""));
            }
            net_sections.push(("tcp_hit", tcp));
            net_sections.push(("routed_hit", routed));
            net_sections.push(("routed_replica_hit", replicated));
            Ok(())
        })();
        if let Err(e) = net {
            eprintln!("loadgen: TCP sections failed: {e}");
            std::process::exit(1);
        }
    }

    let mut doc_fields = vec![
        ("schema", Json::str("stencilmap/serve-loadgen/v1")),
        ("threads", Json::Num(rayon::current_num_threads() as f64)),
        ("quick", Json::Bool(quick)),
        (
            "cache_hit",
            section(
                &hit_latencies,
                vec![
                    ("processes", Json::Num(4800.0)),
                    ("cold_multilevel_s", Json::Num(cold_s)),
                    ("speedup_cold_over_hit", Json::Num(speedup)),
                ],
            ),
        ),
        (
            "cache_hit_compact",
            section(&compact_latencies, vec![("processes", Json::Num(4800.0))]),
        ),
        (
            "cache_hit_nomap",
            section(&nomap_latencies, vec![("processes", Json::Num(4800.0))]),
        ),
        (
            "new_rank_of",
            section(
                &point_latencies,
                vec![
                    ("processes", Json::Num(4800.0)),
                    ("ranks_per_query", Json::Num(3.0)),
                ],
            ),
        ),
        ("cache_miss", section(&miss_latencies, vec![])),
        (
            "mixed",
            section(
                &mixed_latencies,
                vec![("hit_fraction", Json::Num(hit_fraction))],
            ),
        ),
        (
            "batch",
            section(
                &batch_latencies,
                vec![
                    ("batch_size", Json::Num(batch_size as f64)),
                    (
                        "requests_per_s",
                        Json::Num((batch_lines * batch_size) as f64 / batch_total),
                    ),
                ],
            ),
        ),
        (
            "persistence",
            Json::obj(vec![
                ("processes", Json::Num(4800.0)),
                ("entries", Json::Num(persist_entries as f64)),
                ("reload_s", Json::Num(reload_s)),
                ("reload_entries_per_s", Json::Num(reload_entries_per_s)),
                ("hit_after_restart_s", Json::Num(restart_hit_s)),
                ("cold_recompute_s", Json::Num(cold_s)),
            ]),
        ),
        (
            "write_amplification",
            section(
                &wa_latencies,
                vec![
                    ("compact_bytes", Json::Num((32 * 1024) as f64)),
                    ("appended_records", Json::Num(wa_stats.appended as f64)),
                    ("flushes", Json::Num(wa_stats.flushes as f64)),
                    ("compactions", Json::Num(wa_stats.compactions as f64)),
                    ("final_log_bytes", Json::Num(wa_log_bytes as f64)),
                ],
            ),
        ),
    ];
    doc_fields.extend(net_sections);
    let doc = Json::obj(doc_fields);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");

    // sanity floor for the acceptance criterion: the hit path must beat the
    // cold multilevel mapping by a wide margin
    if speedup < 50.0 {
        eprintln!("loadgen: WARNING — cache-hit speedup {speedup:.0}x is below the 50x target");
    }
}
