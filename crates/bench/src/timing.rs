//! Instantiation-time measurement (Figure 9 and Section VI-E).
//!
//! The paper measures the time each algorithm needs to compute the new ranks
//! (200 repetitions, outlier removal, mean with a 95% confidence interval).
//! Here the same protocol is applied to the Rust implementations: the full
//! reordering (all ranks) is computed per repetition, which corresponds to
//! the paper's "maximum time over all processes" because the per-rank
//! computations are embarrassingly parallel.

use cluster_sim::stats::Summary;
use std::time::Instant;
use stencil_mapping::{Mapper, MappingProblem};

/// Instantiation-time measurement of one algorithm.
#[derive(Debug, Clone)]
pub struct InstantiationTiming {
    /// Algorithm name.
    pub algorithm: String,
    /// Summary of the per-repetition wall-clock times in seconds.
    pub summary: Summary,
}

/// Measures the instantiation (reordering) time of every mapper on a problem.
///
/// Every mapper is run `repetitions` times; outliers beyond 1.5 IQR are
/// removed before summarising, mirroring Section VI-E.  Mappers that are not
/// applicable to the instance are skipped.
pub fn time_instantiations(
    problem: &MappingProblem,
    mappers: &[Box<dyn Mapper>],
    repetitions: usize,
) -> Vec<InstantiationTiming> {
    let mut out = Vec::new();
    for mapper in mappers {
        // applicability check (and warm-up)
        if mapper.compute(problem).is_err() {
            continue;
        }
        let mut samples = Vec::with_capacity(repetitions);
        for _ in 0..repetitions.max(1) {
            let start = Instant::now();
            let mapping = mapper.compute(problem).expect("warm-up succeeded");
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(&mapping);
            samples.push(elapsed);
        }
        out.push(InstantiationTiming {
            algorithm: mapper.name().to_string(),
            summary: Summary::of_filtered(&samples),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{Dims, NodeAllocation, Stencil};
    use stencil_mapping::hyperplane::Hyperplane;
    use stencil_mapping::kdtree::KdTree;
    use stencil_mapping::nodecart::Nodecart;
    use stencil_mapping::stencil_strips::StencilStrips;
    use stencil_mapping::viem::GraphMapper;

    fn medium_problem() -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(&[20, 12]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(20, 12),
        )
        .unwrap()
    }

    #[test]
    fn timings_cover_all_applicable_mappers() {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(Hyperplane::default()),
            Box::new(KdTree),
            Box::new(StencilStrips),
            Box::new(Nodecart),
        ];
        let timings = time_instantiations(&medium_problem(), &mappers, 5);
        assert_eq!(timings.len(), 4);
        for t in &timings {
            assert!(t.summary.mean > 0.0);
            assert!(t.summary.n <= 5 && t.summary.n >= 3);
        }
    }

    #[test]
    fn graph_mapper_is_slower_than_the_distributed_algorithms() {
        // The central claim of Fig. 9 / Section VI-E: the specialised
        // algorithms are orders of magnitude faster than the general graph
        // mapper.  On a small instance the gap is already pronounced.
        let mappers: Vec<Box<dyn Mapper>> =
            vec![Box::new(KdTree), Box::new(GraphMapper::with_seed(1))];
        let timings = time_instantiations(&medium_problem(), &mappers, 3);
        assert_eq!(timings.len(), 2);
        let kd = timings.iter().find(|t| t.algorithm == "k-d Tree").unwrap();
        let gm = timings
            .iter()
            .find(|t| t.algorithm == "VieM-style")
            .unwrap();
        assert!(
            gm.summary.mean > kd.summary.mean,
            "general graph mapping must be slower ({} vs {})",
            gm.summary.mean,
            kd.summary.mean
        );
    }

    #[test]
    fn inapplicable_mappers_are_skipped() {
        let hetero = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![6, 6, 4]).unwrap(),
        )
        .unwrap();
        let mappers: Vec<Box<dyn Mapper>> = vec![Box::new(Nodecart), Box::new(KdTree)];
        let timings = time_instantiations(&hetero, &mappers, 2);
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].algorithm, "k-d Tree");
    }
}
