//! Experiment drivers for the figures and tables of the paper.

use cluster_sim::measurement::Measurement;
use cluster_sim::{ExchangeModel, Machine};
use rayon::prelude::*;
use stencil_grid::CartGraph;
use stencil_mapping::analysis::{reductions_over_blocked, InstanceSpec, StencilKind};
use stencil_mapping::baselines::{Blocked, RandomMapping};
use stencil_mapping::hyperplane::Hyperplane;
use stencil_mapping::kdtree::KdTree;
use stencil_mapping::metrics::evaluate;
use stencil_mapping::nodecart::Nodecart;
use stencil_mapping::stencil_strips::StencilStrips;
use stencil_mapping::viem::GraphMapper;
use stencil_mapping::{Mapper, Mapping, MappingProblem};

use crate::paper_throughput_instance;

/// The mappers evaluated in Figures 6 and 7, in the paper's plotting order.
pub fn speedup_mappers(seed: u64) -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(Hyperplane::default()),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(GraphMapper::with_seed(seed)),
        Box::new(Nodecart),
    ]
}

/// The mappers listed in the appendix tables (Tables II–VII).
pub fn table_mappers(seed: u64) -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(Blocked),
        Box::new(Hyperplane::default()),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(Nodecart),
        Box::new(GraphMapper::with_seed(seed)),
        Box::new(RandomMapping::with_seed(seed)),
    ]
}

/// One row of the score panels (left column of Figures 6 and 7).
#[derive(Debug, Clone)]
pub struct ScoreRow {
    /// Stencil name.
    pub stencil: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Total inter-node communication.
    pub j_sum: u64,
    /// Bottleneck-node egress.
    pub j_max: u64,
}

/// Computes the `Jsum`/`Jmax` scores of every mapper on one problem.
/// Mappers that are not applicable are skipped.
pub fn score_table(
    problem: &MappingProblem,
    stencil_name: &str,
    mappers: &[Box<dyn Mapper>],
) -> Vec<ScoreRow> {
    let graph = CartGraph::build(problem.dims(), problem.stencil(), problem.periodic());
    let mut rows = Vec::new();
    for mapper in mappers {
        if let Ok(mapping) = mapper.compute(problem) {
            let cost = evaluate(&graph, &mapping);
            rows.push(ScoreRow {
                stencil: stencil_name.to_string(),
                algorithm: mapper.name().to_string(),
                j_sum: cost.j_sum,
                j_max: cost.j_max,
            });
        }
    }
    rows.sort_by(|a, b| a.stencil.cmp(&b.stencil).then(a.j_sum.cmp(&b.j_sum)));
    rows
}

/// Configuration of the Figure 6/7 experiment.
#[derive(Debug, Clone)]
pub struct Figure67Config {
    /// Number of compute nodes (50 for Fig. 6, 100 for Fig. 7).
    pub nodes: usize,
    /// Machines to simulate (defaults to the three paper machines).
    pub machines: Vec<Machine>,
    /// Message sizes in bytes per neighbor.
    pub message_sizes: Vec<usize>,
    /// Measurement protocol (repetitions, noise, seed).
    pub measurement: Measurement,
    /// Seed for randomised mappers.
    pub seed: u64,
}

impl Figure67Config {
    /// The configuration matching the paper (may take a minute: the
    /// VieM-style mapper runs on 2400/4800-vertex graphs).
    pub fn paper(nodes: usize) -> Self {
        Figure67Config {
            nodes,
            machines: Machine::paper_machines(),
            message_sizes: cluster_sim::exchange::figure_message_sizes(),
            measurement: Measurement::default(),
            seed: 0xCAFE,
        }
    }

    /// A reduced configuration for smoke tests.
    pub fn quick(nodes: usize) -> Self {
        Figure67Config {
            nodes,
            machines: vec![Machine::vsc4()],
            message_sizes: vec![1 << 10, 1 << 16, 1 << 22],
            measurement: Measurement {
                repetitions: 20,
                ..Measurement::default()
            },
            seed: 0xCAFE,
        }
    }
}

/// One speedup data point of Figures 6/7.
#[derive(Debug, Clone)]
pub struct Figure67Row {
    /// Machine name.
    pub machine: String,
    /// Stencil name.
    pub stencil: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Message size in bytes per neighbor.
    pub message_size: usize,
    /// Mean exchange time in seconds (after outlier removal).
    pub mean_time: f64,
    /// Mean blocked exchange time in seconds.
    pub blocked_time: f64,
    /// Speedup over the blocked mapping.
    pub speedup: f64,
}

/// Runs the Figure 6/7 experiment: scores and speedups over the blocked
/// mapping for every machine, stencil, algorithm and message size.
pub fn figure67(cfg: &Figure67Config) -> (Vec<ScoreRow>, Vec<Figure67Row>) {
    let mut scores = Vec::new();
    let mut rows = Vec::new();

    for stencil in StencilKind::all() {
        let problem = paper_throughput_instance(cfg.nodes, stencil);
        let graph = CartGraph::build(problem.dims(), problem.stencil(), problem.periodic());
        let blocked_mapping = Blocked.compute(&problem).expect("blocked always applies");

        // score panel (machine independent)
        let mut mappers = table_mappers(cfg.seed);
        mappers.truncate(6); // the score panels of the paper omit Random
        scores.extend(score_table(&problem, stencil.name(), &mappers));

        // mappings reused across machines and message sizes
        let speedup_set: Vec<(String, Mapping)> = speedup_mappers(cfg.seed)
            .iter()
            .filter_map(|m| {
                m.compute(&problem)
                    .ok()
                    .map(|mapping| (m.name().to_string(), mapping))
            })
            .collect();

        for machine in &cfg.machines {
            let model = ExchangeModel::new(machine);
            let per_machine: Vec<Figure67Row> = cfg
                .message_sizes
                .par_iter()
                .flat_map_iter(|&msg| {
                    let blocked_time = cfg
                        .measurement
                        .measure(&model, &graph, &blocked_mapping, msg)
                        .mean;
                    speedup_set
                        .iter()
                        .map(|(name, mapping)| {
                            let t = cfg.measurement.measure(&model, &graph, mapping, msg).mean;
                            Figure67Row {
                                machine: machine.name.clone(),
                                stencil: stencil.name().to_string(),
                                algorithm: name.clone(),
                                message_size: msg,
                                mean_time: t,
                                blocked_time,
                                speedup: blocked_time / t,
                            }
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            rows.extend(per_machine);
        }
    }
    (scores, rows)
}

/// Configuration of the Figure 8 experiment (reduction distributions over the
/// instance set).
#[derive(Debug, Clone)]
pub struct Figure8Config {
    /// The instances to evaluate.
    pub instances: Vec<InstanceSpec>,
    /// Whether to include the (slow) VieM-style mapper.
    pub include_graph_mapper: bool,
    /// Seed for randomised mappers.
    pub seed: u64,
}

impl Figure8Config {
    /// The paper's 144-instance set.
    pub fn paper() -> Self {
        Figure8Config {
            instances: stencil_mapping::analysis::paper_instance_set(),
            include_graph_mapper: true,
            seed: 7,
        }
    }

    /// A reduced instance set for smoke tests.
    pub fn quick() -> Self {
        Figure8Config {
            instances: stencil_mapping::analysis::small_instance_set(),
            include_graph_mapper: false,
            seed: 7,
        }
    }
}

/// Aggregated reduction statistics of one algorithm on one stencil — the
/// quantity visualised by one box of Figure 8.
#[derive(Debug, Clone)]
pub struct Figure8Row {
    /// Stencil name.
    pub stencil: String,
    /// Algorithm name.
    pub algorithm: String,
    /// `"Jsum"` or `"Jmax"`.
    pub metric: String,
    /// Median reduction over the blocked mapping (lower is better).
    pub median: f64,
    /// Half width of the 95% CI of the median (notch approximation).
    pub median_ci95: f64,
    /// First quartile.
    pub q1: f64,
    /// Third quartile.
    pub q3: f64,
    /// Number of instances.
    pub n: usize,
}

/// Runs the Figure 8 experiment and aggregates per algorithm and metric.
pub fn figure8(cfg: &Figure8Config) -> Vec<Figure8Row> {
    let mut mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Hyperplane::default()),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(Nodecart),
    ];
    if cfg.include_graph_mapper {
        mappers.push(Box::new(GraphMapper::with_seed(cfg.seed)));
    }

    let mut rows = Vec::new();
    for stencil in StencilKind::all() {
        let records = reductions_over_blocked(&cfg.instances, stencil, &mappers);
        for mapper in &mappers {
            let name = mapper.name().to_string();
            let sums: Vec<f64> = records
                .iter()
                .filter(|r| r.algorithm == name)
                .map(|r| r.j_sum_reduction)
                .collect();
            let maxes: Vec<f64> = records
                .iter()
                .filter(|r| r.algorithm == name)
                .map(|r| r.j_max_reduction)
                .collect();
            for (metric, values) in [("Jsum", sums), ("Jmax", maxes)] {
                if values.is_empty() {
                    continue;
                }
                rows.push(Figure8Row {
                    stencil: stencil.name().to_string(),
                    algorithm: name.clone(),
                    metric: metric.to_string(),
                    median: cluster_sim::stats::median(&values),
                    median_ci95: cluster_sim::stats::ci95_median(&values),
                    q1: cluster_sim::stats::quantile(&values, 0.25),
                    q3: cluster_sim::stats::quantile(&values, 0.75),
                    n: values.len(),
                });
            }
        }
    }
    rows
}

/// Configuration of the appendix tables (Tables II–VII).
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// The machine to simulate.
    pub machine: Machine,
    /// Number of compute nodes (50 or 100).
    pub nodes: usize,
    /// Message sizes (the tables use 64 B – 512 KiB).
    pub message_sizes: Vec<usize>,
    /// Measurement protocol.
    pub measurement: Measurement,
    /// Seed for randomised mappers.
    pub seed: u64,
}

impl TableConfig {
    /// The configuration of one paper table.
    pub fn paper(machine: Machine, nodes: usize) -> Self {
        TableConfig {
            machine,
            nodes,
            message_sizes: cluster_sim::exchange::table_message_sizes(),
            measurement: Measurement::default(),
            seed: 0xCAFE,
        }
    }
}

/// One row of an appendix table: mean exchange time (and CI) per algorithm
/// for one stencil and message size.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Stencil name.
    pub stencil: String,
    /// Message size in bytes.
    pub message_size: usize,
    /// `(algorithm, mean seconds, 95% CI half width)` per algorithm.
    pub entries: Vec<(String, f64, f64)>,
}

/// Runs one appendix table.
pub fn appendix_table(cfg: &TableConfig) -> Vec<TableRow> {
    let model = ExchangeModel::new(&cfg.machine);
    let mut rows = Vec::new();
    for stencil in StencilKind::all() {
        let problem = paper_throughput_instance(cfg.nodes, stencil);
        let graph = CartGraph::build(problem.dims(), problem.stencil(), problem.periodic());
        let mappings: Vec<(String, Mapping)> = table_mappers(cfg.seed)
            .iter()
            .filter_map(|m| {
                m.compute(&problem)
                    .ok()
                    .map(|mapping| (m.name().to_string(), mapping))
            })
            .collect();
        let per_stencil: Vec<TableRow> = cfg
            .message_sizes
            .par_iter()
            .map(|&msg| {
                let entries = mappings
                    .iter()
                    .map(|(name, mapping)| {
                        let s = cfg.measurement.measure(&model, &graph, mapping, msg);
                        (name.clone(), s.mean, s.mean_ci95)
                    })
                    .collect();
                TableRow {
                    stencil: stencil.name().to_string(),
                    message_size: msg,
                    entries,
                }
            })
            .collect();
        rows.extend(per_stencil);
    }
    rows
}

mod json_impls {
    use super::{Figure67Row, Figure8Row, ScoreRow, TableRow};
    use crate::report::json::{Json, ToJson};

    impl ToJson for ScoreRow {
        fn to_json(&self) -> Json {
            Json::obj(vec![
                ("stencil", Json::str(&self.stencil)),
                ("algorithm", Json::str(&self.algorithm)),
                ("j_sum", Json::Num(self.j_sum as f64)),
                ("j_max", Json::Num(self.j_max as f64)),
            ])
        }
    }

    impl ToJson for Figure67Row {
        fn to_json(&self) -> Json {
            Json::obj(vec![
                ("machine", Json::str(&self.machine)),
                ("stencil", Json::str(&self.stencil)),
                ("algorithm", Json::str(&self.algorithm)),
                ("message_size", Json::Num(self.message_size as f64)),
                ("mean_time", Json::Num(self.mean_time)),
                ("blocked_time", Json::Num(self.blocked_time)),
                ("speedup", Json::Num(self.speedup)),
            ])
        }
    }

    impl ToJson for Figure8Row {
        fn to_json(&self) -> Json {
            Json::obj(vec![
                ("stencil", Json::str(&self.stencil)),
                ("algorithm", Json::str(&self.algorithm)),
                ("metric", Json::str(&self.metric)),
                ("median", Json::Num(self.median)),
                ("median_ci95", Json::Num(self.median_ci95)),
                ("q1", Json::Num(self.q1)),
                ("q3", Json::Num(self.q3)),
                ("n", Json::Num(self.n as f64)),
            ])
        }
    }

    impl ToJson for TableRow {
        fn to_json(&self) -> Json {
            Json::obj(vec![
                ("stencil", Json::str(&self.stencil)),
                ("message_size", Json::Num(self.message_size as f64)),
                (
                    "entries",
                    Json::Arr(
                        self.entries
                            .iter()
                            .map(|(name, mean, ci)| {
                                Json::obj(vec![
                                    ("algorithm", Json::str(name)),
                                    ("mean", Json::Num(*mean)),
                                    ("ci95", Json::Num(*ci)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_mapping::analysis::StencilKind;

    #[test]
    fn score_table_is_sorted_by_jsum() {
        let problem = crate::quick_throughput_instance(StencilKind::NearestNeighbor);
        let rows = score_table(&problem, "NN", &table_mappers(1));
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[0].j_sum <= w[1].j_sum);
        }
        // blocked is never the best algorithm on this instance
        assert_ne!(rows[0].algorithm, "Blocked");
    }

    #[test]
    fn quick_figure67_produces_expected_rows() {
        let cfg = Figure67Config::quick(8);
        // override the instance size through the quick helper: nodes=8 uses
        // the same code path as the paper (dims_create of 8*48) — keep the
        // test fast by using only one machine and three sizes (already set).
        let cfg = Figure67Config { nodes: 8, ..cfg };
        let (scores, rows) = figure67(&cfg);
        assert!(!scores.is_empty());
        // 3 stencils x 1 machine x 3 sizes x 5 algorithms
        assert_eq!(rows.len(), 3 * 3 * 5);
        // speedups at the largest message size are above 1 for the new
        // algorithms on the nearest neighbor stencil
        let best = rows
            .iter()
            .filter(|r| {
                r.stencil == "Nearest neighbor"
                    && r.message_size == (1 << 22)
                    && r.algorithm == "Stencil Strips"
            })
            .map(|r| r.speedup)
            .next()
            .unwrap();
        assert!(best > 1.0, "speedup = {best}");
    }

    #[test]
    fn quick_figure8_reports_reductions_below_one() {
        let cfg = Figure8Config {
            instances: stencil_mapping::analysis::small_instance_set()
                .into_iter()
                .take(4)
                .collect(),
            include_graph_mapper: false,
            seed: 1,
        };
        let rows = figure8(&cfg);
        assert!(!rows.is_empty());
        let nn_sum_medians: Vec<f64> = rows
            .iter()
            .filter(|r| r.stencil == "Nearest neighbor" && r.metric == "Jsum")
            .map(|r| r.median)
            .collect();
        assert!(nn_sum_medians.iter().any(|&m| m < 1.0));
        for r in &rows {
            assert!(r.q1 <= r.median + 1e-12);
            assert!(r.median <= r.q3 + 1e-12);
        }
    }
}
