//! Perf-regression gate over `BENCH_mapping.json` documents.
//!
//! CI runs [`perf_baseline`](../bin/perf_baseline.rs) and compares the fresh
//! timings against the committed baseline with [`check_partitioner`]: the
//! build fails when multilevel partitioning regresses by more than the
//! allowed fraction.  The comparison deliberately reads only the partitioner
//! sections — instantiation timings at sub-millisecond scale are too noisy
//! to gate on.

/// One compared timing.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Human-readable metric label, e.g. `partitioner.parallel_s`.
    pub label: String,
    /// Committed baseline value in seconds.
    pub baseline_s: f64,
    /// Freshly measured value in seconds.
    pub current_s: f64,
    /// Whether the current value is within the allowed regression.
    pub ok: bool,
}

impl CheckOutcome {
    /// Formats the outcome as one report line.
    pub fn render(&self) -> String {
        format!(
            "{:<34} baseline {:>10.6}s, current {:>10.6}s ({:+6.1}%) {}",
            self.label,
            self.baseline_s,
            self.current_s,
            (self.current_s / self.baseline_s - 1.0) * 100.0,
            if self.ok { "ok" } else { "REGRESSION" }
        )
    }
}

/// Extracts the number stored under `key` within the flat object stored under
/// the first occurrence of `"section"` in a JSON document produced by
/// [`crate::report::json::Json::pretty`].  Returns `None` when the section is
/// absent, holds no object (`"partitioner_large": null` in `--quick` runs),
/// or does not itself contain `key` — the search never leaks into later
/// sections.
pub fn extract_number(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec_pos = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec_pos..];
    let colon = tail.find(':')?;
    let value = tail[colon + 1..].trim_start();
    // the section must hold an object; our sections are flat, so it ends at
    // the first closing brace
    let body = value.strip_prefix('{')?;
    let body = &body[..body.find('}')?];
    let key_pos = body.find(&format!("\"{key}\""))?;
    let after_key = &body[key_pos..];
    let colon = after_key.find(':')?;
    let value = after_key[colon + 1..]
        .trim_start()
        .split([',', '\n'])
        .next()?
        .trim();
    value.parse().ok()
}

/// Compares the partitioner timings of two `BENCH_mapping.json` documents.
///
/// `max_regression` is the allowed fractional slowdown (0.25 = 25%).  The
/// process counts of both documents must agree, otherwise the comparison is
/// meaningless and an error is returned.  Metrics present in only one of the
/// documents are skipped.
pub fn check_partitioner(
    baseline: &str,
    current: &str,
    max_regression: f64,
) -> Result<Vec<CheckOutcome>, String> {
    let metrics = [
        ("partitioner", "parallel_s"),
        ("partitioner", "sequential_s"),
        ("partitioner_large", "single_core_s"),
    ];
    for section in ["partitioner", "partitioner_large"] {
        let b = extract_number(baseline, section, "processes");
        let c = extract_number(current, section, "processes");
        if let (Some(b), Some(c)) = (b, c) {
            if b != c {
                return Err(format!(
                    "{section}: baseline measured p={b} but current measured p={c}; \
                     re-run both at the same scale"
                ));
            }
        }
    }
    let mut outcomes = Vec::new();
    for (section, key) in metrics {
        let (Some(b), Some(c)) = (
            extract_number(baseline, section, key),
            extract_number(current, section, key),
        ) else {
            continue;
        };
        if b <= 0.0 {
            return Err(format!("{section}.{key}: non-positive baseline {b}"));
        }
        outcomes.push(CheckOutcome {
            label: format!("{section}.{key}"),
            baseline_s: b,
            current_s: c,
            ok: c <= b * (1.0 + max_regression),
        });
    }
    if outcomes.is_empty() {
        return Err("no comparable partitioner timings found in the two documents".to_string());
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": "stencilmap/perf-baseline/v1",
  "partitioner": {
    "processes": 4800,
    "parallel_s": 0.04,
    "sequential_s": 0.05
  },
  "partitioner_large": {
    "processes": 100000,
    "parts": 1000,
    "single_core_s": 2.0
  }
}"#;

    #[test]
    fn extract_number_finds_section_scoped_keys() {
        assert_eq!(
            extract_number(DOC, "partitioner", "processes"),
            Some(4800.0)
        );
        assert_eq!(extract_number(DOC, "partitioner", "parallel_s"), Some(0.04));
        assert_eq!(
            extract_number(DOC, "partitioner_large", "single_core_s"),
            Some(2.0)
        );
        assert_eq!(extract_number(DOC, "partitioner", "missing"), None);
        assert_eq!(extract_number(DOC, "absent_section", "processes"), None);
        // a key that only exists in a *later* section must not leak in
        assert_eq!(extract_number(DOC, "partitioner", "single_core_s"), None);
        // a section holding null (quick runs) yields no values
        let quick = DOC.replace(
            "{\n    \"processes\": 100000,\n    \"parts\": 1000,\n    \"single_core_s\": 2.0\n  }",
            "null",
        );
        assert_eq!(
            extract_number(&quick, "partitioner_large", "processes"),
            None
        );
        assert_eq!(
            extract_number(&quick, "partitioner", "processes"),
            Some(4800.0)
        );
    }

    #[test]
    fn identical_documents_pass() {
        let outcomes = check_partitioner(DOC, DOC, 0.25).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.ok));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let slow = DOC.replace("\"parallel_s\": 0.04", "\"parallel_s\": 0.06");
        let outcomes = check_partitioner(DOC, &slow, 0.25).unwrap();
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "partitioner.parallel_s");
        assert!(bad[0].render().contains("REGRESSION"));
        // a 50% budget tolerates it
        assert!(check_partitioner(DOC, &slow, 0.5)
            .unwrap()
            .iter()
            .all(|o| o.ok));
    }

    #[test]
    fn improvement_passes_and_renders() {
        let fast = DOC.replace("\"sequential_s\": 0.05", "\"sequential_s\": 0.01");
        let outcomes = check_partitioner(DOC, &fast, 0.25).unwrap();
        assert!(outcomes.iter().all(|o| o.ok));
        assert!(outcomes.iter().any(|o| o.render().contains("ok")));
    }

    #[test]
    fn mismatched_process_counts_are_rejected() {
        let other = DOC.replace("\"processes\": 4800", "\"processes\": 1200");
        assert!(check_partitioner(DOC, &other, 0.25).is_err());
    }

    #[test]
    fn quick_baselines_without_large_section_still_compare() {
        let quick = DOC.replace("single_core_s", "omitted");
        let outcomes = check_partitioner(DOC, &quick, 0.25).unwrap();
        assert_eq!(outcomes.len(), 2);
    }
}
