//! Perf-regression gates over the committed `BENCH_*.json` baselines.
//!
//! CI regenerates the perf documents ([`perf_baseline`](../bin/perf_baseline.rs)
//! for the engine, [`loadgen`](../bin/loadgen.rs) for the mapping service)
//! and compares them against the committed baselines: the build fails when a
//! gated metric regresses beyond the allowed fraction.  The gated entries
//! are listed in one place — [`GATED_PARTITIONER_METRICS`] and
//! [`GATED_SERVE_METRICS`] — so adding a gate is a one-line change.  The
//! selection is deliberately narrow: sub-millisecond instantiation timings
//! are too noisy to gate on.

/// One gated metric: where it lives in the JSON document and which direction
/// is good.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatedMetric {
    /// Top-level section holding a flat object.
    pub section: &'static str,
    /// Key within the section.
    pub key: &'static str,
    /// `true` for throughput-style metrics (a *drop* is a regression),
    /// `false` for time-style metrics (a *rise* is a regression).
    pub higher_is_better: bool,
}

/// The partitioner timings gated in `BENCH_mapping.json` (times: lower is
/// better).  Shared by `perf_baseline`'s consumers and `perf_check` so the
/// two can never drift apart.
pub const GATED_PARTITIONER_METRICS: &[GatedMetric] = &[
    GatedMetric {
        section: "partitioner",
        key: "parallel_s",
        higher_is_better: false,
    },
    GatedMetric {
        section: "partitioner",
        key: "sequential_s",
        higher_is_better: false,
    },
    GatedMetric {
        section: "partitioner_large",
        key: "single_core_s",
        higher_is_better: false,
    },
    GatedMetric {
        section: "partitioner_xl",
        key: "single_core_s",
        higher_is_better: false,
    },
];

/// Scale guards for the partitioner document: these keys must agree between
/// baseline and current, otherwise the timings are incomparable.
pub const PARTITIONER_SCALE_GUARDS: &[(&str, &str)] = &[
    ("partitioner", "processes"),
    ("partitioner_large", "processes"),
    ("partitioner_xl", "processes"),
];

/// Absolute wall-clock ceilings for the partitioner document, checked against
/// the *current* measurement (the relative gates above only catch drift from
/// the committed baseline, so repeated small regressions could creep past any
/// budget).  The xl ceiling is the acceptance criterion of the coarsening
/// rework: p = 10^6 split into k = 10^4 parts must finish in at most 9 s on a
/// single core; the large instance (p = 10^5, k = 10^3) must stay under
/// 1.9 s.  `--quick` documents measure a scaled-down xl instance, so their
/// (much faster) timing passes these ceilings trivially — the relative gates'
/// scale guards already prevent quick and full documents from being compared.
pub const PARTITIONER_ABSOLUTE_CEILINGS: &[(&str, &str, f64)] = &[
    ("partitioner_xl", "single_core_s", 9.0),
    ("partitioner_large", "single_core_s", 1.9),
];

/// The mapping-service metrics gated in `BENCH_serve.json`: cache-hit
/// throughput in every response mode — full table, compact encoding and
/// `new_rank_of` point lookups — must not collapse, and the persistence log
/// replay (entries restored per second on restart) must stay fast (higher is
/// better throughout).
pub const GATED_SERVE_METRICS: &[GatedMetric] = &[
    GatedMetric {
        section: "cache_hit",
        key: "throughput_rps",
        higher_is_better: true,
    },
    GatedMetric {
        section: "cache_hit_compact",
        key: "throughput_rps",
        higher_is_better: true,
    },
    GatedMetric {
        section: "new_rank_of",
        key: "throughput_rps",
        higher_is_better: true,
    },
    GatedMetric {
        section: "persistence",
        key: "reload_entries_per_s",
        higher_is_better: true,
    },
    GatedMetric {
        section: "tcp_hit",
        key: "throughput_rps",
        higher_is_better: true,
    },
    GatedMetric {
        section: "routed_hit",
        key: "throughput_rps",
        higher_is_better: true,
    },
    GatedMetric {
        section: "routed_replica_hit",
        key: "throughput_rps",
        higher_is_better: true,
    },
];

/// Scale guards for the serve document.
pub const SERVE_SCALE_GUARDS: &[(&str, &str)] = &[
    ("cache_hit", "processes"),
    ("cache_hit_compact", "processes"),
    ("new_rank_of", "processes"),
    ("persistence", "entries"),
    ("routed_hit", "processes"),
    ("routed_hit", "backends"),
    ("routed_replica_hit", "processes"),
    ("routed_replica_hit", "backends"),
    ("routed_replica_hit", "replicas"),
];

/// Absolute throughput floors for the serve document, checked against the
/// *current* measurement (the relative gates above only catch drift from
/// the committed baseline).  The routed-hit floor is the acceptance
/// criterion of the router work: p = 4800 cache hits through the router
/// must sustain at least 10k req/s; the replicated router — which writes
/// every miss through to two replicas but serves hits from the primary
/// alone — must sustain at least 8k req/s over three backends.
pub const SERVE_ABSOLUTE_FLOORS: &[(&str, &str, f64)] = &[
    ("routed_hit", "throughput_rps", 10_000.0),
    ("routed_replica_hit", "throughput_rps", 8_000.0),
];

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Human-readable metric label, e.g. `partitioner.parallel_s`.
    pub label: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Direction of the underlying metric.
    pub higher_is_better: bool,
    /// Whether the current value is within the allowed regression.
    pub ok: bool,
}

impl CheckOutcome {
    /// Relative change of the current value over the baseline (`+0.10` =
    /// 10% higher).
    pub fn change(&self) -> f64 {
        self.current / self.baseline - 1.0
    }

    /// Formats the outcome as one report line.
    pub fn render(&self) -> String {
        format!(
            "{:<34} baseline {:>12.6}, current {:>12.6} ({:+6.1}%) {}",
            self.label,
            self.baseline,
            self.current,
            self.change() * 100.0,
            if self.ok { "ok" } else { "REGRESSION" }
        )
    }
}

/// Extracts the number stored under `key` within the flat object stored under
/// the first occurrence of `"section"` in a JSON document produced by
/// [`crate::report::json::Json::pretty`].  Returns `None` when the section is
/// absent, holds no object (`"partitioner_large": null` in `--quick` runs),
/// or does not itself contain `key` — the search never leaks into later
/// sections.
pub fn extract_number(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec_pos = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec_pos..];
    let colon = tail.find(':')?;
    let value = tail[colon + 1..].trim_start();
    // the section must hold an object; our sections are flat, so it ends at
    // the first closing brace
    let body = value.strip_prefix('{')?;
    let body = &body[..body.find('}')?];
    let key_pos = body.find(&format!("\"{key}\""))?;
    let after_key = &body[key_pos..];
    let colon = after_key.find(':')?;
    let value = after_key[colon + 1..]
        .trim_start()
        .split([',', '\n'])
        .next()?
        .trim();
    value.parse().ok()
}

/// Compares the gated `metrics` of two perf JSON documents.
///
/// `max_regression` is the allowed fractional regression (0.25 = a 25%
/// slowdown for time metrics, a 25% throughput drop for rate metrics).  The
/// `scale_guards` keys must agree between the two documents when present in
/// both, otherwise the comparison is meaningless and an error is returned.
/// Metrics present in only one of the documents are skipped; it is an error
/// when *no* gated metric is comparable.
pub fn check_metrics(
    baseline: &str,
    current: &str,
    max_regression: f64,
    metrics: &[GatedMetric],
    scale_guards: &[(&str, &str)],
) -> Result<Vec<CheckOutcome>, String> {
    for &(section, key) in scale_guards {
        let b = extract_number(baseline, section, key);
        let c = extract_number(current, section, key);
        if let (Some(b), Some(c)) = (b, c) {
            if b != c {
                return Err(format!(
                    "{section}.{key}: baseline measured {b} but current measured {c}; \
                     re-run both at the same scale"
                ));
            }
        }
    }
    let mut outcomes = Vec::new();
    for m in metrics {
        let (Some(b), Some(c)) = (
            extract_number(baseline, m.section, m.key),
            extract_number(current, m.section, m.key),
        ) else {
            continue;
        };
        if b <= 0.0 {
            return Err(format!(
                "{}.{}: non-positive baseline {b}",
                m.section, m.key
            ));
        }
        let ok = if m.higher_is_better {
            c >= b * (1.0 - max_regression)
        } else {
            c <= b * (1.0 + max_regression)
        };
        outcomes.push(CheckOutcome {
            label: format!("{}.{}", m.section, m.key),
            baseline: b,
            current: c,
            higher_is_better: m.higher_is_better,
            ok,
        });
    }
    if outcomes.is_empty() {
        return Err("no comparable gated metrics found in the two documents".to_string());
    }
    Ok(outcomes)
}

/// Compares the partitioner timings of two `BENCH_mapping.json` documents
/// ([`GATED_PARTITIONER_METRICS`]), then applies the
/// [`PARTITIONER_ABSOLUTE_CEILINGS`] to the current document: a ceilinged
/// timing that is present but above its ceiling fails even when the committed
/// baseline had already regressed.
pub fn check_partitioner(
    baseline: &str,
    current: &str,
    max_regression: f64,
) -> Result<Vec<CheckOutcome>, String> {
    let mut outcomes = check_metrics(
        baseline,
        current,
        max_regression,
        GATED_PARTITIONER_METRICS,
        PARTITIONER_SCALE_GUARDS,
    )?;
    for &(section, key, ceiling) in PARTITIONER_ABSOLUTE_CEILINGS {
        let Some(c) = extract_number(current, section, key) else {
            continue;
        };
        outcomes.push(CheckOutcome {
            label: format!("{section}.{key} (ceiling)"),
            baseline: ceiling,
            current: c,
            higher_is_better: false,
            ok: c <= ceiling,
        });
    }
    Ok(outcomes)
}

/// Compares the mapping-service metrics of two `BENCH_serve.json` documents
/// ([`GATED_SERVE_METRICS`]), then applies the [`SERVE_ABSOLUTE_FLOORS`]
/// to the current document: a floored metric that is present but below its
/// floor fails even when the committed baseline had already regressed.
pub fn check_serve(
    baseline: &str,
    current: &str,
    max_regression: f64,
) -> Result<Vec<CheckOutcome>, String> {
    let mut outcomes = check_metrics(
        baseline,
        current,
        max_regression,
        GATED_SERVE_METRICS,
        SERVE_SCALE_GUARDS,
    )?;
    for &(section, key, floor) in SERVE_ABSOLUTE_FLOORS {
        let Some(c) = extract_number(current, section, key) else {
            continue;
        };
        outcomes.push(CheckOutcome {
            label: format!("{section}.{key} (floor)"),
            baseline: floor,
            current: c,
            higher_is_better: true,
            ok: c >= floor,
        });
    }
    Ok(outcomes)
}

/// Renders the outcomes as a GitHub-flavoured markdown table (written to
/// `$GITHUB_STEP_SUMMARY` by the `perf_check` binary so every gated entry is
/// visible at a glance).
pub fn summary_markdown(outcomes: &[CheckOutcome]) -> String {
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                format!("{:.6}", o.baseline),
                format!("{:.6}", o.current),
                format!("{:+.1}%", o.change() * 100.0),
                if o.higher_is_better {
                    "higher"
                } else {
                    "lower"
                }
                .to_string(),
                if o.ok { "✅ ok" } else { "❌ REGRESSION" }.to_string(),
            ]
        })
        .collect();
    crate::report::format_markdown_table(
        &[
            "metric", "baseline", "current", "change", "better", "status",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": "stencilmap/perf-baseline/v1",
  "partitioner": {
    "processes": 4800,
    "parallel_s": 0.04,
    "sequential_s": 0.05
  },
  "partitioner_large": {
    "processes": 100000,
    "parts": 1000,
    "single_core_s": 1.8
  },
  "partitioner_xl": {
    "processes": 1000000,
    "parts": 10000,
    "single_core_s": 8.5
  }
}"#;

    const SERVE_DOC: &str = r#"{
  "schema": "stencilmap/serve-loadgen/v1",
  "cache_hit": {
    "processes": 4800,
    "requests": 2000,
    "throughput_rps": 50000,
    "p50_s": 0.00002
  },
  "cache_hit_compact": {
    "processes": 4800,
    "throughput_rps": 200000
  },
  "new_rank_of": {
    "processes": 4800,
    "throughput_rps": 300000
  },
  "persistence": {
    "processes": 4800,
    "entries": 256,
    "reload_entries_per_s": 40000
  },
  "tcp_hit": {
    "processes": 4800,
    "throughput_rps": 150000
  },
  "routed_hit": {
    "processes": 4800,
    "backends": 2,
    "throughput_rps": 20000
  },
  "routed_replica_hit": {
    "processes": 4800,
    "backends": 3,
    "replicas": 2,
    "throughput_rps": 15000
  }
}"#;

    #[test]
    fn extract_number_finds_section_scoped_keys() {
        assert_eq!(
            extract_number(DOC, "partitioner", "processes"),
            Some(4800.0)
        );
        assert_eq!(extract_number(DOC, "partitioner", "parallel_s"), Some(0.04));
        assert_eq!(
            extract_number(DOC, "partitioner_large", "single_core_s"),
            Some(1.8)
        );
        assert_eq!(
            extract_number(DOC, "partitioner_xl", "single_core_s"),
            Some(8.5)
        );
        assert_eq!(extract_number(DOC, "partitioner", "missing"), None);
        assert_eq!(extract_number(DOC, "absent_section", "processes"), None);
        // a key that only exists in a *later* section must not leak in
        assert_eq!(extract_number(DOC, "partitioner", "single_core_s"), None);
        // a section holding null (quick runs) yields no values
        let quick = DOC.replace(
            "{\n    \"processes\": 100000,\n    \"parts\": 1000,\n    \"single_core_s\": 1.8\n  }",
            "null",
        );
        assert_eq!(
            extract_number(&quick, "partitioner_large", "processes"),
            None
        );
        assert_eq!(
            extract_number(&quick, "partitioner", "processes"),
            Some(4800.0)
        );
    }

    #[test]
    fn identical_documents_pass() {
        let outcomes = check_partitioner(DOC, DOC, 0.25).unwrap();
        assert_eq!(
            outcomes.len(),
            GATED_PARTITIONER_METRICS.len() + PARTITIONER_ABSOLUTE_CEILINGS.len()
        );
        assert!(outcomes.iter().all(|o| o.ok));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let slow = DOC.replace("\"parallel_s\": 0.04", "\"parallel_s\": 0.06");
        let outcomes = check_partitioner(DOC, &slow, 0.25).unwrap();
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "partitioner.parallel_s");
        assert!(bad[0].render().contains("REGRESSION"));
        // a 50% budget tolerates it
        assert!(check_partitioner(DOC, &slow, 0.5)
            .unwrap()
            .iter()
            .all(|o| o.ok));
    }

    #[test]
    fn improvement_passes_and_renders() {
        let fast = DOC.replace("\"sequential_s\": 0.05", "\"sequential_s\": 0.01");
        let outcomes = check_partitioner(DOC, &fast, 0.25).unwrap();
        assert!(outcomes.iter().all(|o| o.ok));
        assert!(outcomes.iter().any(|o| o.render().contains("ok")));
    }

    #[test]
    fn mismatched_process_counts_are_rejected() {
        let other = DOC.replace("\"processes\": 4800", "\"processes\": 1200");
        assert!(check_partitioner(DOC, &other, 0.25).is_err());
    }

    #[test]
    fn quick_baselines_without_large_section_still_compare() {
        let quick = DOC.replace("single_core_s", "omitted");
        let outcomes = check_partitioner(DOC, &quick, 0.25).unwrap();
        // the two small-instance relative gates survive; the ceilings are
        // skipped because the current document carries no ceilinged timing
        assert_eq!(outcomes.len(), 2);
        assert!(!outcomes.iter().any(|o| o.label.contains("ceiling")));
    }

    #[test]
    fn xl_ceiling_is_absolute_not_relative() {
        // identical documents, but the xl timing sits above the 9 s ceiling:
        // the relative gates all pass, the ceiling still fails
        let slow = DOC.replace("\"single_core_s\": 8.5", "\"single_core_s\": 9.4");
        let outcomes = check_partitioner(&slow, &slow, 0.25).unwrap();
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "partitioner_xl.single_core_s (ceiling)");
        // the large instance has its own 1.9 s ceiling
        let slow_large = DOC.replace("\"single_core_s\": 1.8", "\"single_core_s\": 2.0");
        let outcomes = check_partitioner(&slow_large, &slow_large, 0.25).unwrap();
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "partitioner_large.single_core_s (ceiling)");
        // at the committed baseline's level the ceilings pass
        assert!(check_partitioner(DOC, DOC, 0.25)
            .unwrap()
            .iter()
            .all(|o| o.ok));
    }

    #[test]
    fn serve_gate_fails_on_throughput_drop_not_rise() {
        // throughput is higher-is-better: a 2x rise passes …
        let fast = SERVE_DOC.replace("\"throughput_rps\": 50000", "\"throughput_rps\": 100000");
        assert!(check_serve(SERVE_DOC, &fast, 0.25)
            .unwrap()
            .iter()
            .all(|o| o.ok));
        // … a 50% drop fails at a 25% budget (the other gated modes stay ok)
        let slow = SERVE_DOC.replace("\"throughput_rps\": 50000", "\"throughput_rps\": 25000");
        let outcomes = check_serve(SERVE_DOC, &slow, 0.25).unwrap();
        assert_eq!(
            outcomes.len(),
            GATED_SERVE_METRICS.len() + SERVE_ABSOLUTE_FLOORS.len()
        );
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "cache_hit.throughput_rps");
        // … and a 20% drop is within a 25% budget
        let mild = SERVE_DOC.replace("\"throughput_rps\": 50000", "\"throughput_rps\": 40000");
        assert!(check_serve(SERVE_DOC, &mild, 0.25)
            .unwrap()
            .iter()
            .all(|o| o.ok));
        // a collapse of the compact mode is caught independently
        let slow_compact =
            SERVE_DOC.replace("\"throughput_rps\": 200000", "\"throughput_rps\": 50000");
        let outcomes = check_serve(SERVE_DOC, &slow_compact, 0.25).unwrap();
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "cache_hit_compact.throughput_rps");
        // a persistence-reload collapse is caught independently
        let slow_reload = SERVE_DOC.replace(
            "\"reload_entries_per_s\": 40000",
            "\"reload_entries_per_s\": 10000",
        );
        let outcomes = check_serve(SERVE_DOC, &slow_reload, 0.25).unwrap();
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "persistence.reload_entries_per_s");
    }

    #[test]
    fn routed_floor_is_absolute_not_relative() {
        // identical documents, but the routed throughput sits below the
        // 10k floor: the relative gates all pass, the floor still fails
        let slow = SERVE_DOC.replace("\"throughput_rps\": 20000", "\"throughput_rps\": 9000");
        let outcomes = check_serve(&slow, &slow, 0.25).unwrap();
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "routed_hit.throughput_rps (floor)");
        // the replicated-router section has its own 8k floor
        let slow_replica =
            SERVE_DOC.replace("\"throughput_rps\": 15000", "\"throughput_rps\": 7000");
        let outcomes = check_serve(&slow_replica, &slow_replica, 0.25).unwrap();
        let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].label, "routed_replica_hit.throughput_rps (floor)");
        // at the committed baseline's level the floors pass
        let outcomes = check_serve(SERVE_DOC, SERVE_DOC, 0.25).unwrap();
        assert!(outcomes.iter().all(|o| o.ok));
        // a baseline without the routed sections skips the floors cleanly
        // (note "routed_hit" is not a substring of "routed_replica_hit";
        // both renames are needed)
        let legacy = SERVE_DOC
            .replace("routed_hit", "routed_hit_absent")
            .replace("routed_replica_hit", "routed_replica_hit_absent");
        let outcomes = check_serve(&legacy, &legacy, 0.25).unwrap();
        assert!(outcomes.iter().all(|o| o.ok));
        assert!(!outcomes.iter().any(|o| o.label.contains("floor")));
    }

    #[test]
    fn serve_gate_guards_the_request_scale() {
        let other = SERVE_DOC.replace("\"processes\": 4800", "\"processes\": 96");
        assert!(check_serve(SERVE_DOC, &other, 0.25).is_err());
    }

    #[test]
    fn serve_gate_guards_the_persisted_entry_count() {
        let other = SERVE_DOC.replace("\"entries\": 256", "\"entries\": 16");
        assert!(check_serve(SERVE_DOC, &other, 0.25).is_err());
    }

    #[test]
    fn summary_markdown_lists_every_outcome() {
        let mut outcomes = check_partitioner(DOC, DOC, 0.25).unwrap();
        outcomes.extend(check_serve(SERVE_DOC, SERVE_DOC, 0.25).unwrap());
        let md = summary_markdown(&outcomes);
        let lines: Vec<&str> = md.lines().collect();
        // header + separator + one row per outcome
        assert_eq!(lines.len(), 2 + outcomes.len());
        assert!(md.contains("partitioner.parallel_s"));
        assert!(md.contains("cache_hit.throughput_rps"));
        assert!(md.contains("✅"));
    }
}
