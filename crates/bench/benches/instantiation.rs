//! Criterion benchmark of the algorithmic instantiation time (Figure 9 /
//! Section VI-E): how long each algorithm needs to compute the reordering of
//! the largest nearest-neighbor instance (N = 100, 48 processes per node),
//! plus a scaling series over smaller instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stencil_bench::paper_throughput_instance;
use stencil_mapping::analysis::StencilKind;
use stencil_mapping::baselines::Blocked;
use stencil_mapping::hyperplane::Hyperplane;
use stencil_mapping::kdtree::KdTree;
use stencil_mapping::nodecart::Nodecart;
use stencil_mapping::stencil_strips::StencilStrips;
use stencil_mapping::viem::GraphMapper;
use stencil_mapping::Mapper;

fn figure9_instantiation(c: &mut Criterion) {
    let problem = paper_throughput_instance(100, StencilKind::NearestNeighbor);
    let mut group = c.benchmark_group("figure9_instantiation_n100");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    let mappers: Vec<(&str, Box<dyn Mapper>)> = vec![
        ("hyperplane", Box::new(Hyperplane::default())),
        ("kd_tree", Box::new(KdTree)),
        ("stencil_strips", Box::new(StencilStrips)),
        ("nodecart", Box::new(Nodecart)),
        ("blocked", Box::new(Blocked)),
    ];
    for (name, mapper) in &mappers {
        group.bench_function(*name, |b| {
            b.iter(|| mapper.compute(&problem).expect("mapping succeeds"))
        });
    }
    group.finish();

    // The VieM-style mapper is orders of magnitude slower; benchmark it on a
    // reduced effort setting and with the minimum sample count so the suite
    // stays tractable (the gap is still unmistakable).
    let mut slow = c.benchmark_group("figure9_instantiation_n100_graph_mapper");
    slow.sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_millis(500));
    let gm = GraphMapper::with_effort(1, 2);
    slow.bench_function("viem_style", |b| {
        b.iter(|| gm.compute(&problem).expect("mapping succeeds"))
    });
    slow.finish();
}

fn instantiation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("instantiation_scaling_nearest_neighbor");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for nodes in [10usize, 25, 50, 100] {
        let problem = paper_throughput_instance(nodes, StencilKind::NearestNeighbor);
        group.bench_with_input(
            BenchmarkId::new("hyperplane", nodes),
            &problem,
            |b, problem| b.iter(|| Hyperplane::default().compute(problem).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("kd_tree", nodes),
            &problem,
            |b, problem| b.iter(|| KdTree.compute(problem).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("stencil_strips", nodes),
            &problem,
            |b, problem| b.iter(|| StencilStrips.compute(problem).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, figure9_instantiation, instantiation_scaling);
criterion_main!(benches);
