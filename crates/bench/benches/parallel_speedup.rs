//! Criterion benchmark of the parallel mapping engine against its sequential
//! baseline, at figure scale (`p = 2^16` processes) and at the paper's
//! largest evaluation instance (`p = 4800`):
//!
//! * Hyperplane / k-d Tree / Stencil Strips full-mapping computation — the
//!   chunked parallel path is the production path; the sequential baseline is
//!   obtained with `RAYON_NUM_THREADS=1` (run the suite twice to compare on a
//!   multi-core host),
//! * multilevel partitioning with `PartitionConfig::parallel` on and off —
//!   both run in-process, so one suite run reports the speedup directly,
//! * streaming vs. CSR metric evaluation (the streaming evaluator also skips
//!   the graph construction, which is charged to the CSR variant here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_partition::{partition, Graph, PartitionConfig};
use std::time::Duration;
use stencil_grid::{dims_create, CartGraph, Dims, NodeAllocation, Stencil};
use stencil_mapping::hyperplane::Hyperplane;
use stencil_mapping::kdtree::KdTree;
use stencil_mapping::metrics;
use stencil_mapping::stencil_strips::StencilStrips;
use stencil_mapping::{Mapper, MappingProblem};

/// A figure-scale instance: `nodes * 64` processes on a balanced 2-d grid.
fn figure_scale_problem(nodes: usize) -> MappingProblem {
    let per_node = 64usize;
    let dims = dims_create(nodes * per_node, 2);
    MappingProblem::new(
        Dims::new(dims).expect("valid dims"),
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(nodes, per_node),
    )
    .expect("consistent instance")
}

fn geometric_mappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_mapping_p65536");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    // 1024 nodes x 64 procs = 65536 processes (p = 2^16)
    let problem = figure_scale_problem(1024);
    let mappers: Vec<(&str, Box<dyn Mapper>)> = vec![
        ("hyperplane", Box::new(Hyperplane::default())),
        ("kd_tree", Box::new(KdTree)),
        ("stencil_strips", Box::new(StencilStrips)),
    ];
    for (name, mapper) in &mappers {
        group.bench_function(*name, |b| {
            b.iter(|| mapper.compute(&problem).expect("mapping succeeds"))
        });
    }
    group.finish();
}

fn multilevel_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_partitioning_par_vs_seq");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500));
    // The paper's largest evaluation instance (N = 75 x 64 procs, p = 4800).
    let problem = figure_scale_problem(75);
    let cart = CartGraph::build(problem.dims(), problem.stencil(), false);
    let graph = Graph::from_directed_csr(cart.xadj(), cart.adjncy());
    let sizes: Vec<usize> = problem.alloc().sizes().to_vec();
    for parallel in [true, false] {
        let cfg = PartitionConfig::new(sizes.clone())
            .with_seed(1)
            .with_parallel(parallel);
        group.bench_with_input(
            BenchmarkId::from_parameter(if parallel { "parallel" } else { "sequential" }),
            &cfg,
            |b, cfg| b.iter(|| partition(&graph, cfg).unwrap()),
        );
    }
    group.finish();
}

fn metric_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_streaming_vs_csr_p65536");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let problem = figure_scale_problem(1024);
    let mapping = Hyperplane::default().compute(&problem).unwrap();
    group.bench_function("streaming_no_graph", |b| {
        b.iter(|| metrics::evaluate_streaming(problem.dims(), problem.stencil(), false, &mapping))
    });
    group.bench_function("csr_including_graph_build", |b| {
        b.iter(|| {
            let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
            metrics::evaluate(&graph, &mapping)
        })
    });
    let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
    group.bench_function("csr_prebuilt_graph", |b| {
        b.iter(|| metrics::evaluate(&graph, &mapping))
    });
    group.finish();
}

criterion_group!(
    benches,
    geometric_mappers,
    multilevel_partitioning,
    metric_evaluation
);
criterion_main!(benches);
