//! Criterion benchmark of the cluster simulator: the cost of one simulated
//! `MPI_Neighbor_alltoall` evaluation and of the full measurement protocol
//! (200 noisy repetitions + outlier removal), which is the inner loop of the
//! Figure 6/7 and Table II–VII harnesses.

use cluster_sim::{ExchangeModel, Machine, Measurement};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stencil_bench::paper_throughput_instance;
use stencil_grid::CartGraph;
use stencil_mapping::analysis::StencilKind;
use stencil_mapping::baselines::Blocked;
use stencil_mapping::stencil_strips::StencilStrips;
use stencil_mapping::Mapper;

fn single_exchange(c: &mut Criterion) {
    let problem = paper_throughput_instance(50, StencilKind::NearestNeighbor);
    let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
    let blocked = Blocked.compute(&problem).unwrap();
    let strips = StencilStrips.compute(&problem).unwrap();

    let mut group = c.benchmark_group("exchange_time_model");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for machine in Machine::paper_machines() {
        let model = ExchangeModel::new(&machine);
        group.bench_with_input(
            BenchmarkId::new("blocked_512KiB", &machine.name),
            &model,
            |b, model| b.iter(|| model.exchange_time(&graph, &blocked, 1 << 19)),
        );
        group.bench_with_input(
            BenchmarkId::new("stencil_strips_512KiB", &machine.name),
            &model,
            |b, model| b.iter(|| model.exchange_time(&graph, &strips, 1 << 19)),
        );
    }
    group.finish();
}

fn measurement_protocol(c: &mut Criterion) {
    let problem = paper_throughput_instance(50, StencilKind::NearestNeighborHops);
    let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
    let mapping = StencilStrips.compute(&problem).unwrap();
    let model = ExchangeModel::new(&Machine::vsc4());
    let cfg = Measurement::default();

    let mut group = c.benchmark_group("measurement_protocol_200_reps");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for msg in [1usize << 10, 1 << 16, 1 << 22] {
        group.bench_with_input(BenchmarkId::from_parameter(msg), &msg, |b, &msg| {
            b.iter(|| cfg.measure(&model, &graph, &mapping, msg))
        });
    }
    group.finish();
}

criterion_group!(benches, single_exchange, measurement_protocol);
criterion_main!(benches);
