//! Criterion benchmark of the graph-partition substrate: multilevel
//! partitioning and swap refinement of stencil communication graphs (the
//! building blocks of the VieM-style baseline whose runtime gap Fig. 9
//! documents).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_partition::{
    partition, refine_kway, refine_kway_with, Graph, PartitionConfig, RefineConfig,
};
use std::time::Duration;
use stencil_bench::paper_throughput_instance;
use stencil_grid::CartGraph;
use stencil_mapping::analysis::StencilKind;

fn build_graph(nodes: usize) -> (Graph, usize) {
    let problem = paper_throughput_instance(nodes, StencilKind::NearestNeighbor);
    let cart = CartGraph::build(problem.dims(), problem.stencil(), false);
    (
        Graph::from_directed_csr(cart.xadj(), cart.adjncy()),
        problem.num_nodes(),
    )
}

fn multilevel_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_partitioning");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(300));
    for nodes in [10usize, 25, 50] {
        let (graph, parts) = build_graph(nodes);
        let sizes = vec![48usize; parts];
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(graph, sizes),
            |b, (graph, sizes)| {
                b.iter(|| {
                    partition(graph, &PartitionConfig::new(sizes.clone()).with_seed(1)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn kway_refinement(c: &mut Criterion) {
    let (graph, parts) = build_graph(25);
    let sizes = vec![48usize; parts];
    let base = partition(&graph, &PartitionConfig::new(sizes).with_seed(1)).unwrap();

    let mut group = c.benchmark_group("kway_swap_refinement");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for rounds in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let mut parts = base.clone();
                    refine_kway(&graph, &mut parts, rounds, 7)
                })
            },
        );
    }
    // the sequential sweep produces the identical partition; benchmarking it
    // alongside the parallel default exposes the coordination overhead
    group.bench_function("4_rounds_sequential", |b| {
        b.iter(|| {
            let mut parts = base.clone();
            refine_kway_with(
                &graph,
                &mut parts,
                &RefineConfig::new(4, 7).with_parallel(false),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, multilevel_partitioning, kway_refinement);
criterion_main!(benches);
