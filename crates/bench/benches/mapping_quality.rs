//! Criterion benchmark of the mapping-quality pipeline: building the
//! Cartesian communication graph and evaluating `Jsum`/`Jmax` (the inner loop
//! of the Figure 8 sweep), for the three stencils of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stencil_bench::paper_throughput_instance;
use stencil_grid::CartGraph;
use stencil_mapping::analysis::StencilKind;
use stencil_mapping::hyperplane::Hyperplane;
use stencil_mapping::metrics::evaluate;
use stencil_mapping::Mapper;

fn graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cart_graph_construction");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for stencil in StencilKind::all() {
        let problem = paper_throughput_instance(50, stencil);
        group.bench_with_input(
            BenchmarkId::from_parameter(stencil.name()),
            &problem,
            |b, p| b.iter(|| CartGraph::build(p.dims(), p.stencil(), false)),
        );
    }
    group.finish();
}

fn metric_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("jsum_jmax_evaluation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for stencil in StencilKind::all() {
        let problem = paper_throughput_instance(50, stencil);
        let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
        let mapping = Hyperplane::default().compute(&problem).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(stencil.name()),
            &(graph, mapping),
            |b, (graph, mapping)| b.iter(|| evaluate(graph, mapping)),
        );
    }
    group.finish();
}

criterion_group!(benches, graph_construction, metric_evaluation);
criterion_main!(benches);
