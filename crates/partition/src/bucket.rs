//! Dense gain-bucket priority queue for Fiduccia–Mattheyses refinement.
//!
//! FM gains are bounded by the weighted vertex degree: moving `v` changes the
//! cut by at most `±Σ w(e)` over the edges incident to `v`.  A [`BucketQueue`]
//! exploits this bound with one doubly-linked list per attainable gain value
//! (a dense array of `2 * bound + 1` buckets), which makes every operation
//! O(1) except `pop_max`/`peek_max`, whose lazily-decremented max-bucket
//! pointer amortises to O(1) per applied gain update.
//!
//! # Tie-breaking and determinism
//!
//! Within a bucket the discipline is **LIFO**: insertions and gain updates
//! push at the head, and the head is extracted first.  This is the classic FM
//! choice (vertices whose gains just changed are re-examined first) and it is
//! fully deterministic: the extraction order is a pure function of the
//! operation sequence.  Callers that want "smallest vertex id first" among
//! ties of the *initial* gains insert vertices in descending id order.
//!
//! # Clamping
//!
//! Gains outside the configured `±bound` are **clamped** into the extreme
//! buckets (deterministically; the stored, bucket-derived gain saturates at
//! the bound).  This lets callers cap the bucket count — and with it the
//! memory and reset cost — independently of the true gain range: selection
//! among clamped gains degrades to LIFO within the extreme bucket, but
//! callers that track exact gains separately keep full correctness.

/// Sentinel for "no vertex" / "not queued" links.
const NIL: u32 = u32::MAX;

/// A bounded-gain priority queue over vertices `0..n`, with O(1) insert,
/// remove and update, and amortised-O(1) extraction of a maximum-gain vertex.
///
/// The queue owns its storage and is reset (not reallocated) per use via
/// [`BucketQueue::reset`], so repeated FM passes are allocation-free once the
/// buffers have grown to the largest graph's size.
#[derive(Debug, Default)]
pub struct BucketQueue {
    /// `heads[b]` = first vertex of bucket `b` (gain `b as i64 - bound`).
    heads: Vec<u32>,
    /// Doubly-linked bucket lists over vertices.
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Bucket index per vertex, `NIL` when the vertex is not queued.
    bucket_of: Vec<u32>,
    /// Gain bound: buckets cover `-bound ..= bound`.
    bound: i64,
    /// Upper bound on the highest non-empty bucket (decremented lazily).
    max_bucket: usize,
    /// Number of queued vertices.
    len: usize,
}

impl BucketQueue {
    /// Creates an empty queue; storage grows on first [`reset`](Self::reset).
    pub fn new() -> Self {
        BucketQueue::default()
    }

    /// Prepares the queue for vertices `0..n` with gains in
    /// `-bound ..= bound`, clearing any previous content but reusing the
    /// allocations.
    pub fn reset(&mut self, n: usize, bound: i64) {
        assert!(bound >= 0, "gain bound must be non-negative");
        let buckets = (2 * bound + 1) as usize;
        self.heads.clear();
        self.heads.resize(buckets, NIL);
        self.prev.clear();
        self.prev.resize(n, NIL);
        self.next.clear();
        self.next.resize(n, NIL);
        self.bucket_of.clear();
        self.bucket_of.resize(n, NIL);
        self.bound = bound;
        self.max_bucket = 0;
        self.len = 0;
    }

    /// Number of queued vertices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether vertex `v` is currently queued.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        self.bucket_of[v] != NIL
    }

    /// The gain vertex `v` is queued under, or `None` if not queued.
    pub fn gain(&self, v: usize) -> Option<i64> {
        let b = self.bucket_of[v];
        (b != NIL).then(|| b as i64 - self.bound)
    }

    #[inline]
    fn bucket_index(&self, gain: i64) -> usize {
        // gains beyond the configured range land in the extreme buckets (see
        // the module docs on clamping)
        (gain.clamp(-self.bound, self.bound) + self.bound) as usize
    }

    /// Queues vertex `v` with the given gain (at the head of its bucket).
    ///
    /// `v` must not already be queued.
    pub fn insert(&mut self, v: usize, gain: i64) {
        debug_assert!(!self.contains(v), "vertex {v} inserted twice");
        let b = self.bucket_index(gain);
        let head = self.heads[b];
        self.prev[v] = NIL;
        self.next[v] = head;
        if head != NIL {
            self.prev[head as usize] = v as u32;
        }
        self.heads[b] = v as u32;
        self.bucket_of[v] = b as u32;
        if b > self.max_bucket {
            self.max_bucket = b;
        }
        self.len += 1;
    }

    /// Removes vertex `v` from the queue; no-op if it is not queued.
    pub fn remove(&mut self, v: usize) {
        let b = self.bucket_of[v];
        if b == NIL {
            return;
        }
        let (p, nx) = (self.prev[v], self.next[v]);
        if p != NIL {
            self.next[p as usize] = nx;
        } else {
            self.heads[b as usize] = nx;
        }
        if nx != NIL {
            self.prev[nx as usize] = p;
        }
        self.bucket_of[v] = NIL;
        self.len -= 1;
    }

    /// Moves a queued vertex `v` to the bucket of `gain` (head position).
    ///
    /// `v` must be queued.
    pub fn update(&mut self, v: usize, gain: i64) {
        debug_assert!(self.contains(v), "update of unqueued vertex {v}");
        self.remove(v);
        self.insert(v, gain);
    }

    /// Finds the highest non-empty bucket, decrementing the lazy max pointer.
    fn settle_max(&mut self) -> Option<usize> {
        if self.len == 0 {
            self.max_bucket = 0;
            return None;
        }
        while self.heads[self.max_bucket] == NIL {
            debug_assert!(self.max_bucket > 0, "len > 0 but all buckets empty");
            self.max_bucket -= 1;
        }
        Some(self.max_bucket)
    }

    /// The maximum-gain vertex (head of the highest non-empty bucket) without
    /// removing it, or `None` if the queue is empty.
    pub fn peek_max(&mut self) -> Option<(usize, i64)> {
        let b = self.settle_max()?;
        Some((self.heads[b] as usize, b as i64 - self.bound))
    }

    /// Removes and returns a maximum-gain vertex, or `None` if empty.
    /// Ties are broken LIFO (see the module documentation).
    pub fn pop_max(&mut self) -> Option<(usize, i64)> {
        let (v, g) = self.peek_max()?;
        self.remove(v);
        Some((v, g))
    }

    /// Removes and returns the **smallest-id** vertex among those of maximum
    /// gain, or `None` if empty.  Linear in the size of the top bucket; used
    /// where an existing "lowest id wins" scan order must be reproduced
    /// exactly (greedy graph growing).
    pub fn pop_max_min_id(&mut self) -> Option<(usize, i64)> {
        let b = self.settle_max()?;
        let mut best = self.heads[b] as usize;
        let mut cur = self.next[best];
        while cur != NIL {
            if (cur as usize) < best {
                best = cur as usize;
            }
            cur = self.next[cur as usize];
        }
        self.remove(best);
        Some((best, b as i64 - self.bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A naive mirror of the queue: `(vertex, gain, stamp)` triples, where
    /// `stamp` is the logical insertion time.  `pop_max` extracts the entry
    /// with the lexicographically largest `(gain, stamp)` — exactly the LIFO
    /// discipline the bucket queue promises.
    #[derive(Default)]
    struct Oracle {
        entries: Vec<(usize, i64, u64)>,
        clock: u64,
    }

    impl Oracle {
        fn insert(&mut self, v: usize, gain: i64) {
            self.clock += 1;
            self.entries.push((v, gain, self.clock));
        }
        fn remove(&mut self, v: usize) {
            self.entries.retain(|&(u, _, _)| u != v);
        }
        fn update(&mut self, v: usize, gain: i64) {
            self.remove(v);
            self.insert(v, gain);
        }
        fn contains(&self, v: usize) -> bool {
            self.entries.iter().any(|&(u, _, _)| u == v)
        }
        fn pop_max(&mut self) -> Option<(usize, i64)> {
            let &(v, g, _) = self
                .entries
                .iter()
                .max_by_key(|&&(_, g, stamp)| (g, stamp))?;
            self.remove(v);
            Some((v, g))
        }
        fn peek_max(&self) -> Option<(usize, i64)> {
            self.entries
                .iter()
                .max_by_key(|&&(_, g, stamp)| (g, stamp))
                .map(|&(v, g, _)| (v, g))
        }
    }

    #[test]
    fn basic_insert_pop_order() {
        let mut q = BucketQueue::new();
        q.reset(4, 5);
        q.insert(0, -2);
        q.insert(1, 3);
        q.insert(2, 3);
        q.insert(3, 5);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_max(), Some((3, 5)));
        // ties at gain 3: LIFO — vertex 2 was inserted after vertex 1
        assert_eq!(q.pop_max(), Some((2, 3)));
        assert_eq!(q.pop_max(), Some((1, 3)));
        assert_eq!(q.pop_max(), Some((0, -2)));
        assert_eq!(q.pop_max(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn update_moves_between_buckets() {
        let mut q = BucketQueue::new();
        q.reset(3, 4);
        q.insert(0, 0);
        q.insert(1, 1);
        q.insert(2, 2);
        q.update(0, 4);
        assert_eq!(q.gain(0), Some(4));
        assert_eq!(q.peek_max(), Some((0, 4)));
        q.update(0, -4);
        assert_eq!(q.pop_max(), Some((2, 2)));
        q.remove(1);
        assert!(!q.contains(1));
        assert_eq!(q.pop_max(), Some((0, -4)));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_max_min_id_prefers_the_smallest_vertex() {
        let mut q = BucketQueue::new();
        q.reset(6, 4);
        q.insert(5, 2);
        q.insert(1, 2);
        q.insert(3, 2);
        q.insert(0, -1);
        assert_eq!(q.pop_max_min_id(), Some((1, 2)));
        assert_eq!(q.pop_max_min_id(), Some((3, 2)));
        assert_eq!(q.pop_max_min_id(), Some((5, 2)));
        assert_eq!(q.pop_max_min_id(), Some((0, -1)));
        assert_eq!(q.pop_max_min_id(), None);
    }

    #[test]
    fn out_of_range_gains_clamp_into_the_extreme_buckets() {
        let mut q = BucketQueue::new();
        q.reset(4, 3);
        q.insert(0, 100); // clamps to +3
        q.insert(1, 2);
        q.insert(2, -50); // clamps to -3
        q.insert(3, 3);
        assert_eq!(q.gain(0), Some(3));
        assert_eq!(q.gain(2), Some(-3));
        // LIFO among the clamped top bucket: 3 entered after 0
        assert_eq!(q.pop_max(), Some((3, 3)));
        assert_eq!(q.pop_max(), Some((0, 3)));
        assert_eq!(q.pop_max(), Some((1, 2)));
        assert_eq!(q.pop_max(), Some((2, -3)));
    }

    #[test]
    fn remove_is_a_noop_for_unqueued_vertices() {
        let mut q = BucketQueue::new();
        q.reset(2, 1);
        q.insert(0, 1);
        q.remove(1);
        q.remove(0);
        q.remove(0);
        assert!(q.is_empty());
    }

    #[test]
    fn reset_reuses_storage_and_clears_content() {
        let mut q = BucketQueue::new();
        q.reset(100, 10);
        for v in 0..100 {
            q.insert(v, (v % 21) as i64 - 10);
        }
        q.reset(10, 3);
        assert!(q.is_empty());
        assert!((0..10).all(|v| !q.contains(v)));
        q.insert(9, 3);
        assert_eq!(q.pop_max(), Some((9, 3)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// After any operation sequence, `pop_max` agrees with a naive
        /// linear-scan oracle using the same `(gain, recency)` order, and the
        /// stored gains always match the oracle's.
        #[test]
        fn prop_matches_linear_scan_oracle(
            n in 1usize..24,
            bound in 0i64..9,
            ops in proptest::collection::vec(0u64..1_000_000, 1..120),
        ) {
            let mut q = BucketQueue::new();
            q.reset(n, bound);
            let mut oracle = Oracle::default();
            for op in ops {
                let v = (op / 4) as usize % n;
                let gain = ((op / (4 * n as u64)) as i64 % (2 * bound + 1)) - bound;
                match op % 4 {
                    0 => {
                        if !q.contains(v) {
                            q.insert(v, gain);
                            oracle.insert(v, gain);
                        }
                    }
                    1 => {
                        if q.contains(v) {
                            q.update(v, gain);
                            oracle.update(v, gain);
                        }
                    }
                    2 => {
                        q.remove(v);
                        oracle.remove(v);
                    }
                    _ => {
                        prop_assert_eq!(q.pop_max(), oracle.pop_max());
                    }
                }
                prop_assert_eq!(q.len(), oracle.entries.len());
                let peek = q.peek_max();
                prop_assert_eq!(peek, oracle.peek_max());
                for u in 0..n {
                    prop_assert_eq!(q.contains(u), oracle.contains(u));
                    let oracle_gain = oracle
                        .entries
                        .iter()
                        .find(|&&(x, _, _)| x == u)
                        .map(|&(_, g, _)| g);
                    prop_assert_eq!(q.gain(u), oracle_gain);
                }
            }
            // drain both completely: full extraction order must agree
            loop {
                let (a, b) = (q.pop_max(), oracle.pop_max());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
