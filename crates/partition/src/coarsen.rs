//! Multilevel coarsening via heavy-edge matching.
//!
//! A matching pairs adjacent vertices; every matched pair (and every
//! unmatched vertex) becomes one vertex of the next-coarser graph.  Matching
//! the heaviest incident edge first concentrates as much edge weight as
//! possible *inside* coarse vertices, which is what makes multilevel
//! partitioning effective.
//!
//! # Matching scheme
//!
//! Matching runs in *propose-then-commit* rounds (the same discipline as
//! `refine_kway`): each round, every unmatched vertex proposes its best
//! unmatched neighbor — ranked by edge weight, then by a seeded hash of the
//! undirected edge, then by vertex id — and mutual proposals commit.  The
//! ranking is a pure function of the round's snapshot, and commits only read
//! the proposal array, so sequential and parallel execution produce
//! bit-identical matchings for a given seed: parallelism only changes *who
//! computes* each entry, never its value.  Rounds repeat until a round
//! matches nothing or `MATCH_ROUNDS` is hit.  Because the hash is
//! symmetric in the edge's endpoints, both endpoints of a locally-heaviest
//! edge rank it first and match in one round, so a handful of rounds
//! suffice.  This replaces the seed implementation's RNG-shuffled visit
//! order + per-vertex scan, which was serial by construction and trashed the
//! cache (random vertex order ⇒ random CSR row order).
//!
//! # Contraction
//!
//! [`contract_with`] assembles the coarse CSR directly: coarse vertices are
//! numbered by their smallest member, per-row upper bounds (sum of the two
//! members' degrees) are prefix-summed into workspace scratch, and every
//! coarse row is gathered + merged independently into its disjoint scratch
//! slice — embarrassingly parallel with no locks and a deterministic result.
//! Only the returned level's exact-size arrays are allocated.
//!
//! # Overflow policy
//!
//! Coarse vertex weights and merged parallel-edge weights accumulate with
//! `saturating_add`.  This mirrors `gain_bucket_bound`'s clamping contract:
//! on (absurdly) heavy inputs the partitioner degrades deterministically —
//! weights pin at `u32::MAX`, balance targets become approximate — instead
//! of silently wrapping and corrupting balance targets and FM gains.
//!
//! # Retention policy
//!
//! [`coarsen_hierarchy_with`] composes successive matchings until the graph
//! has shrunk to `RETAIN_SHRINK` of the previous *retained* level before
//! keeping a level, so hierarchy levels decrease geometrically and total
//! retained memory stays O(n) even on graphs where single matchings shrink
//! poorly.  Progress is judged from the matched-pair count *before*
//! contracting (a matching that pairs <5% of vertices stalls the hierarchy
//! without paying for a contraction).

use crate::workspace::Workspace;
use crate::Graph;
use rayon::prelude::*;

/// The result of one coarsening step.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarser graph.
    pub graph: Graph,
    /// For every fine vertex, the coarse vertex it was merged into.
    pub fine_to_coarse: Vec<u32>,
}

/// Maximum propose-then-commit rounds per matching.  Mutual heavy-edge
/// proposals match in round one; later rounds only mop up chains of
/// hash-order conflicts, so the cap is rarely reached.
const MATCH_ROUNDS: usize = 8;

/// Keep composing matchings into one retained hierarchy level until the
/// graph has shrunk to this fraction of the previous retained level.  A
/// perfect matching halves the graph, so most retained levels are one or two
/// matchings; the geometric decrease bounds total retained memory by
/// `n / (1 - RETAIN_SHRINK)` vertices.
const RETAIN_SHRINK: f64 = 0.45;

/// Below this many vertices the parallel paths fall back to sequential code
/// (identical results either way; the threshold only avoids fork overhead).
const PAR_MIN_VERTICES: usize = 1 << 14;

/// Rows per parallel contraction/matching task.
const PAR_CHUNK: usize = 1 << 12;

#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded tie-break key of an undirected edge; symmetric in `u`/`v` so both
/// endpoints rank their shared edge identically.
#[inline]
fn edge_key(seed: u64, u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    splitmix64(seed ^ (((a as u64) << 32) | b as u64))
}

/// Round-1 proposal: every vertex is still unmatched, so no partner checks
/// are needed, and the tie-break key is the XOR of the endpoints' per-round
/// random draws (symmetric, like [`edge_key`], but one load + XOR per edge
/// instead of a hash).  Pure function of the round snapshot.
#[inline]
fn propose_round1(graph: &Graph, rand: &[u64], u: usize) -> u32 {
    let ru = rand[u];
    let mut best: Option<(u32, u64, u32)> = None;
    for (v, w) in graph.edges_of(u) {
        let vi = v as usize;
        if vi == u {
            continue;
        }
        let key = (w, ru ^ rand[vi], v);
        if best.is_none_or(|b| key > b) {
            best = Some(key);
        }
    }
    best.map_or(u32::MAX, |(_, _, v)| v)
}

/// One vertex's proposal for a mop-up round: its best unmatched neighbor
/// by (weight, seeded edge hash, id), or `u32::MAX` if none.  Pure function
/// of the round snapshot — the parallel and sequential paths both call this.
#[inline]
fn propose_for(graph: &Graph, partner: &[u32], seed: u64, u: usize) -> u32 {
    if partner[u] as usize != u {
        return u32::MAX;
    }
    let mut best: Option<(u32, u64, u32)> = None;
    for (v, w) in graph.edges_of(u) {
        let vi = v as usize;
        if vi == u || partner[vi] as usize != vi {
            continue;
        }
        let key = (w, edge_key(seed, u as u32, v), v);
        if best.is_none_or(|b| key > b) {
            best = Some(key);
        }
    }
    best.map_or(u32::MAX, |(_, _, v)| v)
}

/// Commits mutual proposals for `partner[base..base + chunk.len()]`.
/// Reads only the (frozen) proposal array, so commit order is irrelevant.
#[inline]
fn commit_chunk(chunk: &mut [u32], proposal: &[u32], base: usize) {
    for (i, p) in chunk.iter_mut().enumerate() {
        let u = base + i;
        let v = proposal[u];
        if v != u32::MAX && proposal[v as usize] == u as u32 {
            *p = v;
        }
    }
}

/// Computes a heavy-edge matching of `graph` by seeded propose-then-commit
/// rounds (see the [module documentation](self)).
///
/// Returns, for every vertex, its matched partner (or itself if unmatched).
pub fn heavy_edge_matching(graph: &Graph, seed: u64) -> Vec<u32> {
    heavy_edge_matching_with(graph, seed, &mut Workspace::new())
}

/// [`heavy_edge_matching`] with caller-provided scratch buffers.
///
/// The returned vector is *taken from* the workspace's partner buffer (so
/// the result can outlive further workspace use).  To keep repeated calls
/// allocation-free, hand it back when done — `ws.partner = partner;` — as
/// [`coarsen_hierarchy_with`] does; otherwise each call allocates a fresh
/// partner vector.
pub fn heavy_edge_matching_with(graph: &Graph, seed: u64, ws: &mut Workspace) -> Vec<u32> {
    heavy_edge_matching_impl(graph, seed, false, ws).0
}

/// Matching engine shared by the sequential and parallel entry points.
/// Returns the partner array and the number of matched pairs, which is
/// exactly the shrinkage the contraction will achieve
/// (`coarse_n = n - pairs`).
pub(crate) fn heavy_edge_matching_impl(
    graph: &Graph,
    seed: u64,
    parallel: bool,
    ws: &mut Workspace,
) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut partner = std::mem::take(&mut ws.partner);
    partner.clear();
    partner.extend(0..n as u32);
    let mut worklist = ws.take_spare();
    // Every proposal slot this round reads is written first (round 1 writes
    // all n; later rounds only read slots of worklist vertices, which they
    // rewrote), so the buffer only needs the length, not a refill.  Same for
    // the per-vertex random draws, refreshed in full below.
    Workspace::ensure_len(&mut ws.proposal, n);
    Workspace::ensure_len(&mut ws.rand, n);
    let Workspace { proposal, rand, .. } = ws;
    let proposal = &mut proposal[..n];
    let rand = &mut rand[..n];
    let par = parallel && n >= PAR_MIN_VERTICES;

    // Round 1 proposes for every vertex (in parallel on large graphs).
    let round_seed = splitmix64(seed);
    if par {
        rand.par_chunks_mut(PAR_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * PAR_CHUNK;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = splitmix64(round_seed ^ (base + i) as u64);
                }
            });
        let rand_ref: &[u64] = rand;
        proposal
            .par_chunks_mut(PAR_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * PAR_CHUNK;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = propose_round1(graph, rand_ref, base + i);
                }
            });
    } else {
        for (v, slot) in rand.iter_mut().enumerate() {
            *slot = splitmix64(round_seed ^ v as u64);
        }
        for (u, slot) in proposal.iter_mut().enumerate() {
            *slot = propose_round1(graph, rand, u);
        }
    }
    if par {
        let proposal_ref: &[u32] = proposal;
        partner
            .par_chunks_mut(PAR_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| commit_chunk(chunk, proposal_ref, ci * PAR_CHUNK));
    } else {
        commit_chunk(&mut partner, proposal, 0);
    }

    // Later rounds only mop up hash-order conflicts among the (shrinking)
    // unmatched residue, so they propose and commit over a worklist instead
    // of rescanning all n vertices.  Stale `proposal` entries of matched
    // vertices are never read: a committed proposal always names an
    // unmatched-at-snapshot vertex, i.e. one whose entry this round rewrote.
    // The worklist is filtered in ascending vertex order, so the sequential
    // mop-up is deterministic and independent of the round-1 parallelism.
    worklist.clear();
    worklist.extend(
        partner
            .iter()
            .enumerate()
            .filter(|&(u, &p)| p as usize == u)
            .map(|(u, _)| u as u32),
    );
    let mut pairs = (n - worklist.len()) / 2;
    for round in 1..MATCH_ROUNDS {
        if worklist.is_empty() {
            break;
        }
        let round_seed = splitmix64(seed ^ round as u64);
        for &u in &worklist {
            proposal[u as usize] = propose_for(graph, &partner, round_seed, u as usize);
        }
        let mut matched_any = false;
        for &u in &worklist {
            let v = proposal[u as usize];
            if v != u32::MAX && proposal[v as usize] == u {
                partner[u as usize] = v;
                matched_any = true;
                if u < v {
                    pairs += 1;
                }
            }
        }
        if !matched_any {
            break;
        }
        worklist.retain(|&u| partner[u as usize] == u);
    }
    ws.recycle(worklist);
    (partner, pairs)
}

/// Contracts a matching into a coarser graph.  Vertex weights are summed and
/// parallel coarse edges are merged by summing their weights, both with
/// saturation (see the [module documentation](self) for the overflow
/// policy).  `partner` must be symmetric (`partner[partner[u]] == u`), as
/// produced by [`heavy_edge_matching`].
pub fn contract(graph: &Graph, partner: &[u32]) -> CoarseLevel {
    contract_with(graph, partner, &mut Workspace::new())
}

/// [`contract`] with caller-provided scratch buffers.
///
/// The coarse CSR is assembled directly: per-row upper bounds (sum of both
/// members' degrees) are prefix-summed into workspace scratch, every coarse
/// row is gathered and duplicate-merged inside its own disjoint scratch
/// slice, and the exact-size result arrays are the only allocations.
pub fn contract_with(graph: &Graph, partner: &[u32], ws: &mut Workspace) -> CoarseLevel {
    contract_impl(graph, partner, false, ws)
}

/// Gathers and duplicate-merges the coarse rows `c0..c0 + cdeg.len()` into
/// `adj`/`wgt` (scratch slices covering exactly those rows' upper-bound
/// ranges).  Each row is independent, so disjoint chunks run in parallel.
#[allow(clippy::too_many_arguments)]
fn fill_rows(
    graph: &Graph,
    partner: &[u32],
    fine_to_coarse: &[u32],
    rep: &[u32],
    row_offsets: &[usize],
    c0: usize,
    adj: &mut [u32],
    wgt: &mut [u32],
    cdeg: &mut [u32],
) {
    let base = row_offsets[c0];
    for (i, out_deg) in cdeg.iter_mut().enumerate() {
        let c = c0 + i;
        let cu = c as u32;
        let start = row_offsets[c] - base;
        let mut len = 0usize;
        let r = rep[c] as usize;
        let p = partner[r] as usize;
        let members = [r, p];
        let member_count = if p == r { 1 } else { 2 };
        for &m in &members[..member_count] {
            for (v, w) in graph.edges_of(m) {
                let cv = fine_to_coarse[v as usize];
                if cv == cu {
                    continue;
                }
                // Keep the row sorted as we go; rows are short (bounded by
                // the two members' degrees), so shift-insertion beats a
                // separate sort + merge pass.
                match adj[start..start + len].binary_search(&cv) {
                    Ok(pos) => {
                        let j = start + pos;
                        wgt[j] = wgt[j].saturating_add(w);
                    }
                    Err(pos) => {
                        let j = start + pos;
                        adj.copy_within(j..start + len, j + 1);
                        wgt.copy_within(j..start + len, j + 1);
                        adj[j] = cv;
                        wgt[j] = w;
                        len += 1;
                    }
                }
            }
        }
        *out_deg = len as u32;
    }
}

/// Contraction engine shared by the sequential and parallel entry points.
pub(crate) fn contract_impl(
    graph: &Graph,
    partner: &[u32],
    parallel: bool,
    ws: &mut Workspace,
) -> CoarseLevel {
    let n = graph.num_vertices();
    debug_assert!(
        (0..n).all(|u| partner[partner[u] as usize] as usize == u),
        "contract requires a symmetric matching"
    );

    // Number coarse vertices by their smallest member (ascending), recording
    // one representative per coarse vertex.
    let Workspace {
        rep,
        row_offsets,
        scratch_adj,
        scratch_wgt,
        cdeg,
        ..
    } = ws;
    let mut fine_to_coarse: Vec<u32> = Vec::with_capacity(n);
    rep.clear();
    for (u, &pu) in partner[..n].iter().enumerate() {
        let p = pu as usize;
        if p >= u {
            fine_to_coarse.push(rep.len() as u32);
            rep.push(u as u32);
        } else {
            let c = fine_to_coarse[p];
            fine_to_coarse.push(c);
        }
    }
    let cn = rep.len();

    // Coarse vertex weights, saturating (overflow policy: degrade to
    // pinned weights rather than wrap).
    let mut vwgt: Vec<u32> = Vec::with_capacity(cn);
    vwgt.extend(rep.iter().map(|&r| {
        let p = partner[r as usize];
        let w = graph.vertex_weight(r as usize);
        if p == r {
            w
        } else {
            w.saturating_add(graph.vertex_weight(p as usize))
        }
    }));

    // Upper-bound row extents (sum of both members' degrees), prefix-summed
    // into workspace scratch so every row owns a disjoint slice.
    row_offsets.clear();
    row_offsets.reserve(cn + 1);
    row_offsets.push(0);
    let mut total = 0usize;
    for &r in rep.iter() {
        let p = partner[r as usize] as usize;
        let mut ub = graph.neighbors(r as usize).len();
        if p != r as usize {
            ub += graph.neighbors(p).len();
        }
        total += ub;
        row_offsets.push(total);
    }
    // `fill_rows` writes every scratch cell before reading it (the merged
    // prefix of each row) and assigns every `cdeg` entry, so the buffers only
    // need capacity, not a zero-fill — skipping the O(E) memset per level.
    Workspace::ensure_len(scratch_adj, total);
    Workspace::ensure_len(scratch_wgt, total);
    Workspace::ensure_len(cdeg, cn);
    let scratch_adj = &mut scratch_adj[..total];
    let scratch_wgt = &mut scratch_wgt[..total];
    let cdeg = &mut cdeg[..cn];

    // Gather + merge every coarse row into its scratch slice.
    if parallel && cn >= PAR_MIN_VERTICES {
        // one parallel task: (first coarse row, adj / wgt / cdeg slices)
        type RowTask<'a> = (usize, &'a mut [u32], &'a mut [u32], &'a mut [u32]);
        let mut tasks: Vec<RowTask<'_>> = Vec::new();
        let (mut adj_rest, mut wgt_rest, mut cdeg_rest) =
            (&mut *scratch_adj, &mut *scratch_wgt, &mut *cdeg);
        let mut c0 = 0usize;
        while c0 < cn {
            let rows = PAR_CHUNK.min(cn - c0);
            let split = row_offsets[c0 + rows] - row_offsets[c0];
            let (adj_chunk, rest_a) = adj_rest.split_at_mut(split);
            let (wgt_chunk, rest_w) = wgt_rest.split_at_mut(split);
            let (cdeg_chunk, rest_c) = cdeg_rest.split_at_mut(rows);
            adj_rest = rest_a;
            wgt_rest = rest_w;
            cdeg_rest = rest_c;
            tasks.push((c0, adj_chunk, wgt_chunk, cdeg_chunk));
            c0 += rows;
        }
        let (rep_ref, off_ref): (&[u32], &[usize]) = (rep, row_offsets);
        let ftc_ref: &[u32] = &fine_to_coarse;
        tasks.into_par_iter().for_each(|(c0, adj, wgt, cd)| {
            fill_rows(graph, partner, ftc_ref, rep_ref, off_ref, c0, adj, wgt, cd);
        });
    } else if cn > 0 {
        fill_rows(
            graph,
            partner,
            &fine_to_coarse,
            rep,
            row_offsets,
            0,
            scratch_adj,
            scratch_wgt,
            cdeg,
        );
    }

    // Compact the merged rows into exact-size CSR arrays.
    let mut xadj = Vec::with_capacity(cn + 1);
    xadj.push(0usize);
    let mut m = 0usize;
    for &d in cdeg.iter() {
        m += d as usize;
        xadj.push(m);
    }
    let mut adjncy = Vec::with_capacity(m);
    let mut adjwgt = Vec::with_capacity(m);
    for c in 0..cn {
        let s = row_offsets[c];
        let d = cdeg[c] as usize;
        adjncy.extend_from_slice(&scratch_adj[s..s + d]);
        adjwgt.extend_from_slice(&scratch_wgt[s..s + d]);
    }

    CoarseLevel {
        graph: Graph::from_csr(xadj, adjncy, adjwgt, vwgt),
        fine_to_coarse,
    }
}

/// Repeatedly coarsens `graph` until it has at most `target_vertices`
/// vertices or matching stops making progress (pairs less than ~5% of the
/// vertices).  Returns the hierarchy from finest (first) to coarsest (last);
/// retained levels shrink geometrically (see the retention policy in the
/// [module documentation](self)).
pub fn coarsen_hierarchy(graph: &Graph, target_vertices: usize, seed: u64) -> Vec<CoarseLevel> {
    coarsen_hierarchy_with(graph, target_vertices, seed, &mut Workspace::new())
}

/// [`coarsen_hierarchy`] with caller-provided scratch buffers.
pub fn coarsen_hierarchy_with(
    graph: &Graph,
    target_vertices: usize,
    seed: u64,
    ws: &mut Workspace,
) -> Vec<CoarseLevel> {
    coarsen_hierarchy_impl(graph, target_vertices, seed, false, ws)
}

/// Composes two consecutive coarsening steps into one hierarchy level.
fn compose(prev: CoarseLevel, next: CoarseLevel) -> CoarseLevel {
    let mut fine_to_coarse = prev.fine_to_coarse;
    for c in fine_to_coarse.iter_mut() {
        *c = next.fine_to_coarse[*c as usize];
    }
    CoarseLevel {
        graph: next.graph,
        fine_to_coarse,
    }
}

/// Hierarchy engine shared by the sequential and parallel entry points.
pub(crate) fn coarsen_hierarchy_impl(
    graph: &Graph,
    target_vertices: usize,
    seed: u64,
    parallel: bool,
    ws: &mut Workspace,
) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut round = 0u64;
    let mut stalled = false;
    while !stalled {
        let composed = {
            let current: &Graph = levels.last().map(|l| &l.graph).unwrap_or(graph);
            if current.num_vertices() <= target_vertices {
                break;
            }
            let retain_goal = ((current.num_vertices() as f64 * RETAIN_SHRINK).ceil() as usize)
                .max(target_vertices);
            let mut composed: Option<CoarseLevel> = None;
            loop {
                let g: &Graph = composed.as_ref().map(|l| &l.graph).unwrap_or(current);
                let gn = g.num_vertices();
                if gn <= retain_goal {
                    break;
                }
                let (partner, pairs) =
                    heavy_edge_matching_impl(g, seed.wrapping_add(round), parallel, ws);
                round += 1;
                // Judge progress from the matching itself: `gn - pairs` is
                // exactly the contracted size, so a no-progress matching
                // stalls the hierarchy without paying for a contraction.
                let no_progress = (gn - pairs) as f64 > gn as f64 * 0.95;
                if no_progress {
                    ws.partner = partner;
                    stalled = true;
                    break;
                }
                let next = contract_impl(g, &partner, parallel, ws);
                ws.partner = partner;
                composed = Some(match composed {
                    None => next,
                    Some(prev) => compose(prev, next),
                });
            }
            composed
        };
        match composed {
            Some(level) => levels.push(level),
            None => break,
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grid_graph, path_graph};

    #[test]
    fn matching_is_symmetric_and_valid() {
        let g = grid_graph(6, 6);
        let partner = heavy_edge_matching(&g, 42);
        for u in 0..g.num_vertices() {
            let p = partner[u] as usize;
            assert_eq!(partner[p] as usize, u, "matching must be symmetric");
            if p != u {
                assert!(
                    g.neighbors(u).contains(&(p as u32)),
                    "partners must be adjacent"
                );
            }
        }
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // triangle with one heavy edge 0-1
        let g = Graph::from_edges(3, &[(0, 1, 10), (1, 2, 1), (0, 2, 1)]);
        let partner = heavy_edge_matching(&g, 0);
        assert_eq!(partner[0], 1);
        assert_eq!(partner[1], 0);
        assert_eq!(partner[2], 2);
    }

    #[test]
    fn matching_reports_pair_count() {
        let g = grid_graph(8, 8);
        let mut ws = Workspace::new();
        let (partner, pairs) = heavy_edge_matching_impl(&g, 5, false, &mut ws);
        let expected = (0..g.num_vertices())
            .filter(|&u| (partner[u] as usize) > u)
            .count();
        assert_eq!(pairs, expected);
        assert!(pairs > 0);
    }

    #[test]
    fn matching_is_identical_with_parallel_flag() {
        // the parallel path must be bit-identical to the sequential one
        // (PAR_MIN_VERTICES normally hides it on small graphs, so force a
        // graph large enough to cross the threshold)
        let g = grid_graph(150, 120);
        assert!(g.num_vertices() >= super::PAR_MIN_VERTICES);
        let mut ws = Workspace::new();
        let (seq, seq_pairs) = heavy_edge_matching_impl(&g, 11, false, &mut ws);
        let (par, par_pairs) = heavy_edge_matching_impl(&g, 11, true, &mut ws);
        assert_eq!(seq, par);
        assert_eq!(seq_pairs, par_pairs);
    }

    #[test]
    fn contract_preserves_total_vertex_weight() {
        let g = grid_graph(5, 4);
        let partner = heavy_edge_matching(&g, 1);
        let level = contract(&g, &partner);
        assert_eq!(level.graph.total_vertex_weight(), g.total_vertex_weight());
        assert!(level.graph.num_vertices() < g.num_vertices());
        assert!(level.graph.num_vertices() >= g.num_vertices() / 2);
        // mapping covers every fine vertex
        assert!(level
            .fine_to_coarse
            .iter()
            .all(|&c| (c as usize) < level.graph.num_vertices()));
        assert!(level.graph.is_symmetric());
    }

    #[test]
    fn contract_matches_edge_list_construction() {
        // the direct-CSR contraction must agree with the reference
        // construction via Graph::from_edges
        let g = grid_graph(7, 5);
        let partner = heavy_edge_matching(&g, 9);
        let level = contract(&g, &partner);
        let mut edges = Vec::new();
        for u in 0..g.num_vertices() {
            let cu = level.fine_to_coarse[u];
            for (v, w) in g.edges_of(u) {
                let cv = level.fine_to_coarse[v as usize];
                if cu < cv {
                    edges.push((cu, cv, w));
                }
            }
        }
        let mut reference = Graph::from_edges(level.graph.num_vertices(), &edges);
        for u in 0..g.num_vertices() {
            let cu = level.fine_to_coarse[u] as usize;
            reference.set_vertex_weight(cu, level.graph.vertex_weight(cu));
        }
        assert_eq!(level.graph, reference);
    }

    #[test]
    fn contract_is_identical_with_parallel_flag() {
        let g = grid_graph(150, 120);
        let mut ws = Workspace::new();
        let (partner, _) = heavy_edge_matching_impl(&g, 3, false, &mut ws);
        let seq = contract_impl(&g, &partner, false, &mut ws);
        let par = contract_impl(&g, &partner, true, &mut ws);
        assert_eq!(seq.graph, par.graph);
        assert_eq!(seq.fine_to_coarse, par.fine_to_coarse);
    }

    #[test]
    fn contract_path_preserves_cut_structure() {
        let g = path_graph(8);
        let partner = heavy_edge_matching(&g, 3);
        let level = contract(&g, &partner);
        // a path stays connected after contraction
        assert!(level.graph.num_edges() >= level.graph.num_vertices() - 1);
    }

    #[test]
    fn contract_saturates_instead_of_wrapping() {
        // Regression test for the u32 accumulation overflow: two matched
        // vertices of weight 3e9 each (sum 6e9 > u32::MAX) used to wrap to
        // 1_705_032_704; the documented policy is saturation.  Likewise two
        // parallel coarse edges of weight 3e9 each must merge by saturation.
        let mut g = Graph::from_edges(
            4,
            &[
                (0, 1, 1),
                (0, 2, 3_000_000_000),
                (1, 2, 3_000_000_000),
                (2, 3, 1),
            ],
        );
        g.set_vertex_weight(0, 3_000_000_000);
        g.set_vertex_weight(1, 3_000_000_000);
        // match 0-1 and 2-3 explicitly
        let partner = vec![1, 0, 3, 2];
        let level = contract(&g, &partner);
        assert_eq!(level.graph.num_vertices(), 2);
        // vertex weight saturates, not wraps
        assert_eq!(level.graph.vertex_weight(0), u32::MAX);
        // the two parallel edges {0,1}-{2,3} (from 0-2 and 1-2) merge with
        // saturation
        let (_, w) = level.graph.edges_of(0).next().unwrap();
        assert_eq!(w, u32::MAX);
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = grid_graph(16, 16);
        let levels = coarsen_hierarchy(&g, 30, 7);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(
            coarsest.num_vertices() <= 40,
            "got {}",
            coarsest.num_vertices()
        );
        assert_eq!(coarsest.total_vertex_weight(), 256);
    }

    #[test]
    fn hierarchy_levels_shrink_geometrically() {
        // retained levels must shrink by at least RETAIN_SHRINK (except a
        // possible final stalled level), keeping total memory O(n)
        let g = grid_graph(40, 40);
        let levels = coarsen_hierarchy(&g, 25, 2);
        let mut prev = g.num_vertices();
        for (i, level) in levels.iter().enumerate() {
            let n = level.graph.num_vertices();
            let goal = ((prev as f64 * RETAIN_SHRINK).ceil() as usize).max(25);
            assert!(
                n <= goal || i == levels.len() - 1,
                "level {i} has {n} vertices, retain goal {goal}"
            );
            prev = n;
        }
        let total: usize = levels.iter().map(|l| l.graph.num_vertices()).sum();
        assert!(total <= 3 * g.num_vertices());
    }

    #[test]
    fn hierarchy_stalls_without_progress_before_contracting() {
        // an edgeless graph cannot be matched at all: the hierarchy must
        // stop via the matched-pair-count check (before paying for any
        // contraction) and return no levels
        let g = Graph::from_edges(64, &[]);
        let levels = coarsen_hierarchy(&g, 8, 1);
        assert!(levels.is_empty());
    }

    #[test]
    fn hierarchy_composes_fine_to_coarse_consistently() {
        // when a retained level composes several matchings, fine_to_coarse
        // must still map every fine vertex onto the retained coarse graph
        // with conserved vertex weight
        let g = grid_graph(32, 32);
        let levels = coarsen_hierarchy(&g, 20, 9);
        let mut fine_n = g.num_vertices();
        let mut fine_weights: Vec<u64> = (0..fine_n).map(|u| g.vertex_weight(u) as u64).collect();
        for level in &levels {
            assert_eq!(level.fine_to_coarse.len(), fine_n);
            let cn = level.graph.num_vertices();
            let mut sums = vec![0u64; cn];
            for (u, &c) in level.fine_to_coarse.iter().enumerate() {
                assert!((c as usize) < cn);
                sums[c as usize] += fine_weights[u];
            }
            for (c, &s) in sums.iter().enumerate() {
                assert_eq!(s, level.graph.vertex_weight(c) as u64);
            }
            fine_n = cn;
            fine_weights = sums;
        }
    }

    #[test]
    fn hierarchy_on_tiny_graph_is_empty_or_small() {
        let g = path_graph(3);
        let levels = coarsen_hierarchy(&g, 10, 0);
        assert!(levels.is_empty());
    }

    #[test]
    fn hierarchy_reuses_one_workspace_across_levels() {
        let g = grid_graph(20, 20);
        let mut ws = Workspace::new();
        let a = coarsen_hierarchy_with(&g, 16, 5, &mut ws);
        let b = coarsen_hierarchy_with(&g, 16, 5, &mut ws);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.fine_to_coarse, y.fine_to_coarse);
        }
    }
}
