//! Multilevel coarsening via heavy-edge matching.
//!
//! A matching pairs adjacent vertices; every matched pair (and every
//! unmatched vertex) becomes one vertex of the next-coarser graph.  Matching
//! the heaviest incident edge first concentrates as much edge weight as
//! possible *inside* coarse vertices, which is what makes multilevel
//! partitioning effective.

use crate::Graph;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The result of one coarsening step.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarser graph.
    pub graph: Graph,
    /// For every fine vertex, the coarse vertex it was merged into.
    pub fine_to_coarse: Vec<u32>,
}

/// Computes a heavy-edge matching of `graph`, visiting vertices in random
/// order (seeded) and matching each unmatched vertex with its heaviest
/// unmatched neighbor.
///
/// Returns, for every vertex, its matched partner (or itself if unmatched).
pub fn heavy_edge_matching(graph: &Graph, seed: u64) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut partner: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    for &u in &order {
        if matched[u] {
            continue;
        }
        let mut best: Option<(u32, u32)> = None; // (neighbor, weight)
        for (v, w) in graph.edges_of(u) {
            if !matched[v as usize] && v as usize != u {
                if best.map_or(true, |(_, bw)| w > bw) {
                    best = Some((v, w));
                }
            }
        }
        if let Some((v, _)) = best {
            matched[u] = true;
            matched[v as usize] = true;
            partner[u] = v;
            partner[v as usize] = u as u32;
        }
    }
    partner
}

/// Contracts a matching into a coarser graph.  Vertex weights are summed and
/// parallel coarse edges are merged by summing their weights.
pub fn contract(graph: &Graph, partner: &[u32]) -> CoarseLevel {
    let n = graph.num_vertices();
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut coarse_count = 0u32;
    for u in 0..n {
        if fine_to_coarse[u] != u32::MAX {
            continue;
        }
        let p = partner[u] as usize;
        fine_to_coarse[u] = coarse_count;
        if p != u && fine_to_coarse[p] == u32::MAX {
            fine_to_coarse[p] = coarse_count;
        }
        coarse_count += 1;
    }
    let cn = coarse_count as usize;
    // accumulate coarse vertex weights and edges
    let mut vwgt = vec![0u32; cn];
    for u in 0..n {
        vwgt[fine_to_coarse[u] as usize] += graph.vertex_weight(u);
    }
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for u in 0..n {
        let cu = fine_to_coarse[u];
        for (v, w) in graph.edges_of(u) {
            let cv = fine_to_coarse[v as usize];
            if cu < cv {
                edges.push((cu, cv, w));
            }
        }
    }
    let mut coarse = Graph::from_edges(cn, &edges);
    for (c, &w) in vwgt.iter().enumerate() {
        coarse.set_vertex_weight(c, w);
    }
    CoarseLevel {
        graph: coarse,
        fine_to_coarse,
    }
}

/// Repeatedly coarsens `graph` until it has at most `target_vertices`
/// vertices or a coarsening step stops making progress (shrinks by less than
/// ~10%).  Returns the hierarchy from finest (first) to coarsest (last).
pub fn coarsen_hierarchy(graph: &Graph, target_vertices: usize, seed: u64) -> Vec<CoarseLevel> {
    let mut levels = Vec::new();
    let mut current = graph.clone();
    let mut round = 0u64;
    while current.num_vertices() > target_vertices {
        let partner = heavy_edge_matching(&current, seed.wrapping_add(round));
        let level = contract(&current, &partner);
        let shrunk = level.graph.num_vertices();
        if shrunk as f64 > current.num_vertices() as f64 * 0.95 {
            break;
        }
        current = level.graph.clone();
        levels.push(level);
        round += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grid_graph, path_graph};

    #[test]
    fn matching_is_symmetric_and_valid() {
        let g = grid_graph(6, 6);
        let partner = heavy_edge_matching(&g, 42);
        for u in 0..g.num_vertices() {
            let p = partner[u] as usize;
            assert_eq!(partner[p] as usize, u, "matching must be symmetric");
            if p != u {
                assert!(g.neighbors(u).contains(&(p as u32)), "partners must be adjacent");
            }
        }
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // triangle with one heavy edge 0-1
        let g = Graph::from_edges(3, &[(0, 1, 10), (1, 2, 1), (0, 2, 1)]);
        let partner = heavy_edge_matching(&g, 0);
        assert_eq!(partner[0], 1);
        assert_eq!(partner[1], 0);
        assert_eq!(partner[2], 2);
    }

    #[test]
    fn contract_preserves_total_vertex_weight() {
        let g = grid_graph(5, 4);
        let partner = heavy_edge_matching(&g, 1);
        let level = contract(&g, &partner);
        assert_eq!(
            level.graph.total_vertex_weight(),
            g.total_vertex_weight()
        );
        assert!(level.graph.num_vertices() < g.num_vertices());
        assert!(level.graph.num_vertices() >= g.num_vertices() / 2);
        // mapping covers every fine vertex
        assert!(level.fine_to_coarse.iter().all(|&c| (c as usize) < level.graph.num_vertices()));
        assert!(level.graph.is_symmetric());
    }

    #[test]
    fn contract_path_preserves_cut_structure() {
        let g = path_graph(8);
        let partner = heavy_edge_matching(&g, 3);
        let level = contract(&g, &partner);
        // a path stays connected after contraction
        assert!(level.graph.num_edges() >= level.graph.num_vertices() - 1);
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = grid_graph(16, 16);
        let levels = coarsen_hierarchy(&g, 30, 7);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.num_vertices() <= 40, "got {}", coarsest.num_vertices());
        assert_eq!(coarsest.total_vertex_weight(), 256);
    }

    #[test]
    fn hierarchy_on_tiny_graph_is_empty_or_small() {
        let g = path_graph(3);
        let levels = coarsen_hierarchy(&g, 10, 0);
        assert!(levels.is_empty());
    }
}
