//! Multilevel coarsening via heavy-edge matching.
//!
//! A matching pairs adjacent vertices; every matched pair (and every
//! unmatched vertex) becomes one vertex of the next-coarser graph.  Matching
//! the heaviest incident edge first concentrates as much edge weight as
//! possible *inside* coarse vertices, which is what makes multilevel
//! partitioning effective.
//!
//! All stages thread a [`Workspace`] so that repeated coarsening performs no
//! per-level scratch allocation; contraction builds the coarse CSR arrays
//! directly with a marker-based row merge instead of per-vertex tree maps.

use crate::workspace::Workspace;
use crate::Graph;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The result of one coarsening step.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarser graph.
    pub graph: Graph,
    /// For every fine vertex, the coarse vertex it was merged into.
    pub fine_to_coarse: Vec<u32>,
}

/// Computes a heavy-edge matching of `graph`, visiting vertices in random
/// order (seeded) and matching each unmatched vertex with its heaviest
/// unmatched neighbor.
///
/// Returns, for every vertex, its matched partner (or itself if unmatched).
pub fn heavy_edge_matching(graph: &Graph, seed: u64) -> Vec<u32> {
    heavy_edge_matching_with(graph, seed, &mut Workspace::new())
}

/// [`heavy_edge_matching`] with caller-provided scratch buffers.
///
/// The returned vector is *taken from* the workspace's partner buffer (so
/// the result can outlive further workspace use).  To keep repeated calls
/// allocation-free, hand it back when done — `ws.partner = partner;` — as
/// [`coarsen_hierarchy_with`] does; otherwise each call allocates a fresh
/// partner vector.
pub fn heavy_edge_matching_with(graph: &Graph, seed: u64, ws: &mut Workspace) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut partner = std::mem::take(&mut ws.partner);
    partner.clear();
    partner.extend(0..n as u32);
    Workspace::reset(&mut ws.matched, n, false);
    ws.order.clear();
    ws.order.extend(0..n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    ws.order.shuffle(&mut rng);
    for &u in &ws.order {
        if ws.matched[u] {
            continue;
        }
        let mut best: Option<(u32, u32)> = None; // (neighbor, weight)
        for (v, w) in graph.edges_of(u) {
            if !ws.matched[v as usize] && v as usize != u && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((v, w));
            }
        }
        if let Some((v, _)) = best {
            ws.matched[u] = true;
            ws.matched[v as usize] = true;
            partner[u] = v;
            partner[v as usize] = u as u32;
        }
    }
    partner
}

/// Contracts a matching into a coarser graph.  Vertex weights are summed and
/// parallel coarse edges are merged by summing their weights.
pub fn contract(graph: &Graph, partner: &[u32]) -> CoarseLevel {
    contract_with(graph, partner, &mut Workspace::new())
}

/// [`contract`] with caller-provided scratch buffers.
///
/// The coarse graph is assembled directly in CSR form: the members of every
/// coarse vertex are gathered with a counting sort, and each coarse row is
/// merged with a marker array (one slot per coarse vertex) instead of a tree
/// map, so the only allocations are the returned level's own arrays.
pub fn contract_with(graph: &Graph, partner: &[u32], ws: &mut Workspace) -> CoarseLevel {
    let n = graph.num_vertices();
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut coarse_count = 0u32;
    for u in 0..n {
        if fine_to_coarse[u] != u32::MAX {
            continue;
        }
        let p = partner[u] as usize;
        fine_to_coarse[u] = coarse_count;
        if p != u && fine_to_coarse[p] == u32::MAX {
            fine_to_coarse[p] = coarse_count;
        }
        coarse_count += 1;
    }
    let cn = coarse_count as usize;

    // Gather the members of every coarse vertex (counting sort).
    Workspace::reset(&mut ws.member_offsets, cn + 1, 0);
    for &c in fine_to_coarse.iter() {
        ws.member_offsets[c as usize + 1] += 1;
    }
    for c in 0..cn {
        ws.member_offsets[c + 1] += ws.member_offsets[c];
    }
    Workspace::reset(&mut ws.members, n, 0);
    {
        // scatter using a moving cursor per coarse vertex
        let mut cursor = std::mem::take(&mut ws.order);
        cursor.clear();
        cursor.extend_from_slice(&ws.member_offsets[..cn]);
        for (u, &c) in fine_to_coarse.iter().enumerate() {
            ws.members[cursor[c as usize]] = u as u32;
            cursor[c as usize] += 1;
        }
        ws.order = cursor;
    }

    // Accumulate coarse vertex weights and merge rows.
    let mut vwgt = vec![0u32; cn];
    for u in 0..n {
        vwgt[fine_to_coarse[u] as usize] += graph.vertex_weight(u);
    }
    Workspace::reset(&mut ws.marker, cn, u32::MAX);
    Workspace::reset(&mut ws.acc, cn, 0);
    let mut xadj = Vec::with_capacity(cn + 1);
    let mut adjncy = Vec::new();
    let mut adjwgt = Vec::new();
    xadj.push(0usize);
    for cu in 0..cn as u32 {
        ws.row.clear();
        for &u in &ws.members[ws.member_offsets[cu as usize]..ws.member_offsets[cu as usize + 1]] {
            for (v, w) in graph.edges_of(u as usize) {
                let cv = fine_to_coarse[v as usize];
                if cv == cu {
                    continue;
                }
                if ws.marker[cv as usize] != cu {
                    ws.marker[cv as usize] = cu;
                    ws.acc[cv as usize] = w;
                    ws.row.push(cv);
                } else {
                    ws.acc[cv as usize] += w;
                }
            }
        }
        ws.row.sort_unstable();
        for &cv in &ws.row {
            adjncy.push(cv);
            adjwgt.push(ws.acc[cv as usize]);
        }
        xadj.push(adjncy.len());
    }

    CoarseLevel {
        graph: Graph::from_csr(xadj, adjncy, adjwgt, vwgt),
        fine_to_coarse,
    }
}

/// Repeatedly coarsens `graph` until it has at most `target_vertices`
/// vertices or a coarsening step stops making progress (shrinks by less than
/// ~5%).  Returns the hierarchy from finest (first) to coarsest (last).
pub fn coarsen_hierarchy(graph: &Graph, target_vertices: usize, seed: u64) -> Vec<CoarseLevel> {
    coarsen_hierarchy_with(graph, target_vertices, seed, &mut Workspace::new())
}

/// [`coarsen_hierarchy`] with caller-provided scratch buffers.
pub fn coarsen_hierarchy_with(
    graph: &Graph,
    target_vertices: usize,
    seed: u64,
    ws: &mut Workspace,
) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut round = 0u64;
    loop {
        let level = {
            let current: &Graph = levels.last().map(|l| &l.graph).unwrap_or(graph);
            if current.num_vertices() <= target_vertices {
                break;
            }
            let partner = heavy_edge_matching_with(current, seed.wrapping_add(round), ws);
            let level = contract_with(current, &partner, ws);
            ws.partner = partner;
            if level.graph.num_vertices() as f64 > current.num_vertices() as f64 * 0.95 {
                break;
            }
            level
        };
        levels.push(level);
        round += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grid_graph, path_graph};

    #[test]
    fn matching_is_symmetric_and_valid() {
        let g = grid_graph(6, 6);
        let partner = heavy_edge_matching(&g, 42);
        for u in 0..g.num_vertices() {
            let p = partner[u] as usize;
            assert_eq!(partner[p] as usize, u, "matching must be symmetric");
            if p != u {
                assert!(
                    g.neighbors(u).contains(&(p as u32)),
                    "partners must be adjacent"
                );
            }
        }
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // triangle with one heavy edge 0-1
        let g = Graph::from_edges(3, &[(0, 1, 10), (1, 2, 1), (0, 2, 1)]);
        let partner = heavy_edge_matching(&g, 0);
        assert_eq!(partner[0], 1);
        assert_eq!(partner[1], 0);
        assert_eq!(partner[2], 2);
    }

    #[test]
    fn contract_preserves_total_vertex_weight() {
        let g = grid_graph(5, 4);
        let partner = heavy_edge_matching(&g, 1);
        let level = contract(&g, &partner);
        assert_eq!(level.graph.total_vertex_weight(), g.total_vertex_weight());
        assert!(level.graph.num_vertices() < g.num_vertices());
        assert!(level.graph.num_vertices() >= g.num_vertices() / 2);
        // mapping covers every fine vertex
        assert!(level
            .fine_to_coarse
            .iter()
            .all(|&c| (c as usize) < level.graph.num_vertices()));
        assert!(level.graph.is_symmetric());
    }

    #[test]
    fn contract_matches_edge_list_construction() {
        // the direct-CSR contraction must agree with the reference
        // construction via Graph::from_edges
        let g = grid_graph(7, 5);
        let partner = heavy_edge_matching(&g, 9);
        let level = contract(&g, &partner);
        let mut edges = Vec::new();
        for u in 0..g.num_vertices() {
            let cu = level.fine_to_coarse[u];
            for (v, w) in g.edges_of(u) {
                let cv = level.fine_to_coarse[v as usize];
                if cu < cv {
                    edges.push((cu, cv, w));
                }
            }
        }
        let mut reference = Graph::from_edges(level.graph.num_vertices(), &edges);
        for u in 0..g.num_vertices() {
            let cu = level.fine_to_coarse[u] as usize;
            reference.set_vertex_weight(cu, level.graph.vertex_weight(cu));
        }
        assert_eq!(level.graph, reference);
    }

    #[test]
    fn contract_path_preserves_cut_structure() {
        let g = path_graph(8);
        let partner = heavy_edge_matching(&g, 3);
        let level = contract(&g, &partner);
        // a path stays connected after contraction
        assert!(level.graph.num_edges() >= level.graph.num_vertices() - 1);
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = grid_graph(16, 16);
        let levels = coarsen_hierarchy(&g, 30, 7);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(
            coarsest.num_vertices() <= 40,
            "got {}",
            coarsest.num_vertices()
        );
        assert_eq!(coarsest.total_vertex_weight(), 256);
    }

    #[test]
    fn hierarchy_on_tiny_graph_is_empty_or_small() {
        let g = path_graph(3);
        let levels = coarsen_hierarchy(&g, 10, 0);
        assert!(levels.is_empty());
    }

    #[test]
    fn hierarchy_reuses_one_workspace_across_levels() {
        let g = grid_graph(20, 20);
        let mut ws = Workspace::new();
        let a = coarsen_hierarchy_with(&g, 16, 5, &mut ws);
        let b = coarsen_hierarchy_with(&g, 16, 5, &mut ws);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.fine_to_coarse, y.fine_to_coarse);
        }
    }
}
