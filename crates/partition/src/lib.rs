//! # graph-partition
//!
//! A from-scratch multilevel graph partitioner with k-way swap refinement.
//!
//! This crate is the substrate for the *VieM*-style general graph mapping
//! baseline used in the evaluation of
//! *"Efficient Process-to-Node Mapping Algorithms for Stencil Computations"*
//! (Hunold et al., CLUSTER 2020).  VieM itself is a closed-source tool; this
//! crate re-implements the relevant pipeline from scratch:
//!
//! 1. [`Graph`] — an undirected weighted graph in CSR form,
//! 2. multilevel **coarsening** via heavy-edge matching ([`coarsen`]),
//! 3. an **initial bisection** by greedy graph growing ([`bisect`]),
//! 4. **Fiduccia–Mattheyses** boundary refinement ([`fm`]) driven by dense
//!    **gain buckets** ([`bucket`]) — O(1) selection and incremental gain
//!    updates instead of linear rescans,
//! 5. **recursive bisection** into parts of exact, arbitrary sizes
//!    ([`partitioner`]), with the independent halves of every bisection
//!    executed in parallel (deterministically — see
//!    [`PartitionConfig::parallel`]),
//! 6. randomized **k-way pairwise-swap local search** ([`refine`]) mirroring
//!    the local search VieM applies to the final mapping, parallelised with
//!    part-pair coloring and identical results for every thread count
//!    ([`RefineConfig::parallel`]).
//!
//! All per-level scratch lives in a reusable [`Workspace`] threaded through
//! the pipeline (`*_with` entry points), so a steady-state multilevel run
//! performs no per-level scratch allocation.  The worker count is controlled
//! by the `RAYON_NUM_THREADS` environment variable.
//!
//! The objective is the (unit- or weighted-) edge cut, which for a
//! homogeneous two-level machine model (`distance 0:1` in VieM terms) is
//! exactly the `Jsum` objective of the paper.
//!
//! ```
//! use graph_partition::{Graph, PartitionConfig, partition};
//!
//! // a 4x4 grid graph split into 4 parts of 4 vertices each
//! let mut edges = Vec::new();
//! for r in 0..4u32 {
//!     for c in 0..4u32 {
//!         let v = r * 4 + c;
//!         if c + 1 < 4 { edges.push((v, v + 1, 1)); }
//!         if r + 1 < 4 { edges.push((v, v + 4, 1)); }
//!     }
//! }
//! let g = Graph::from_edges(16, &edges);
//! let cfg = PartitionConfig::new(vec![4, 4, 4, 4]);
//! let parts = partition(&g, &cfg).unwrap();
//! assert_eq!(parts.iter().filter(|&&p| p == 0).count(), 4);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bisect;
pub mod bucket;
pub mod coarsen;
pub mod csr;
pub mod fm;
pub mod partitioner;
pub mod refine;
pub mod workspace;

pub use bucket::BucketQueue;
pub use csr::Graph;
pub use partitioner::{partition, partition_with, PartitionConfig, PartitionError};
pub use refine::{refine_kway, refine_kway_with, RefineConfig, RefineStats};
pub use workspace::Workspace;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::Graph;

    /// Builds the communication graph of a `rows x cols` grid with 4-point
    /// nearest-neighbor connectivity and unit weights.
    pub fn grid_graph(rows: u32, cols: u32) -> Graph {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1));
                }
            }
        }
        Graph::from_edges((rows * cols) as usize, &edges)
    }

    /// A path graph with `n` vertices.
    pub fn path_graph(n: u32) -> Graph {
        let edges: Vec<(u32, u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1, 1)).collect();
        Graph::from_edges(n as usize, &edges)
    }
}
