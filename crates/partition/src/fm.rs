//! Fiduccia–Mattheyses (FM) refinement for two-way partitions.
//!
//! Starting from a balanced bisection, vertices are moved one at a time,
//! always choosing the highest-gain unlocked vertex on the side that is
//! currently at or above its target weight; every vertex moves at most once
//! per pass.  The best balanced prefix of the move sequence is kept.  Passes
//! repeat until no improvement is found.
//!
//! Scratch state (gains, locks, the move journal) lives in a [`Workspace`],
//! so repeated refinement passes allocate nothing.

use crate::workspace::Workspace;
use crate::Graph;

/// Refines a two-way partition in place.  `target0` is the required total
/// vertex weight of part 0.  Returns the cut after refinement.
///
/// The partition handed in should already satisfy the balance constraint
/// (part-0 weight equal to `target0`, as produced by
/// [`greedy_bisection`](crate::bisect::greedy_bisection)); the refined
/// partition satisfies it again on return.
pub fn fm_refine(graph: &Graph, part: &mut [u32], target0: u64, max_passes: usize) -> u64 {
    fm_refine_with(graph, part, target0, max_passes, &mut Workspace::new())
}

/// [`fm_refine`] with caller-provided scratch buffers.
pub fn fm_refine_with(
    graph: &Graph,
    part: &mut [u32],
    target0: u64,
    max_passes: usize,
    ws: &mut Workspace,
) -> u64 {
    assert_eq!(part.len(), graph.num_vertices());
    rebalance(graph, part, target0);
    let mut best_cut = graph.cut(part);
    for _ in 0..max_passes {
        let improved = fm_pass(graph, part, target0, &mut best_cut, ws);
        if !improved {
            break;
        }
    }
    best_cut
}

/// Greedily restores the balance constraint (part-0 weight equal to
/// `target0`) by moving the highest-gain vertices from the overweight side,
/// as long as every move strictly reduces the imbalance.  With unit vertex
/// weights this always reaches exact balance; with heavier vertices it stops
/// as close to the target as possible.
pub fn rebalance(graph: &Graph, part: &mut [u32], target0: u64) {
    let mut weight0: u64 = (0..graph.num_vertices())
        .filter(|&v| part[v] == 0)
        .map(|v| graph.vertex_weight(v) as u64)
        .sum();
    loop {
        if weight0 == target0 {
            return;
        }
        let (from, deficit) = if weight0 > target0 {
            (0u32, weight0 - target0)
        } else {
            (1u32, target0 - weight0)
        };
        // pick the movable vertex with the best gain whose move reduces the
        // imbalance
        let mut best: Option<(usize, i64)> = None;
        for v in 0..graph.num_vertices() {
            if part[v] != from {
                continue;
            }
            let w = graph.vertex_weight(v) as u64;
            if w == 0 || w > 2 * deficit - 1 {
                // moving v would overshoot at least as far as we are off now
                continue;
            }
            let gain: i64 = graph
                .edges_of(v)
                .map(|(u, ew)| {
                    if part[u as usize] == part[v] {
                        -(ew as i64)
                    } else {
                        ew as i64
                    }
                })
                .sum();
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((v, gain));
            }
        }
        match best {
            Some((v, _)) => {
                let w = graph.vertex_weight(v) as u64;
                if from == 0 {
                    weight0 -= w;
                } else {
                    weight0 += w;
                }
                part[v] = 1 - part[v];
            }
            None => return,
        }
    }
}

/// One FM pass.  Returns whether the cut improved.
fn fm_pass(
    graph: &Graph,
    part: &mut [u32],
    target0: u64,
    best_cut: &mut u64,
    ws: &mut Workspace,
) -> bool {
    let n = graph.num_vertices();
    Workspace::reset(&mut ws.locked, n, false);
    // gain[v] = reduction of the cut when v switches sides
    ws.gain.clear();
    ws.gain.extend((0..n).map(|v| {
        graph
            .edges_of(v)
            .map(|(u, w)| {
                if part[u as usize] == part[v] {
                    -(w as i64)
                } else {
                    w as i64
                }
            })
            .sum::<i64>()
    }));
    let mut weight0: u64 = (0..n)
        .filter(|&v| part[v] == 0)
        .map(|v| graph.vertex_weight(v) as u64)
        .sum();

    let mut current_cut = graph.cut(part) as i64;
    let start_cut = *best_cut;
    ws.moves.clear();
    let mut best_prefix: Option<usize> = None;
    let mut best_prefix_cut = *best_cut as i64;

    for _ in 0..n {
        // Move from part 0 if it is over target, from part 1 if under;
        // when exactly on target pick the side offering the better gain.
        let from = if weight0 > target0 {
            0
        } else if weight0 < target0 {
            1
        } else {
            let best0 = best_movable(graph, part, &ws.locked, &ws.gain, 0);
            let best1 = best_movable(graph, part, &ws.locked, &ws.gain, 1);
            match (best0, best1) {
                (Some((_, g0)), Some((_, g1))) => {
                    if g0 >= g1 {
                        0
                    } else {
                        1
                    }
                }
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (None, None) => break,
            }
        };
        let Some((v, g)) = best_movable(graph, part, &ws.locked, &ws.gain, from) else {
            break;
        };
        // apply the move
        ws.locked[v] = true;
        current_cut -= g;
        let to = 1 - part[v];
        if part[v] == 0 {
            weight0 -= graph.vertex_weight(v) as u64;
        } else {
            weight0 += graph.vertex_weight(v) as u64;
        }
        part[v] = to;
        // update neighbor gains
        for (u, w) in graph.edges_of(v) {
            let u = u as usize;
            if part[u] == part[v] {
                // u is now on the same side as v: moving u away gets worse
                ws.gain[u] -= 2 * w as i64;
            } else {
                ws.gain[u] += 2 * w as i64;
            }
        }
        ws.gain[v] = -ws.gain[v];
        ws.moves.push(v);
        if weight0 == target0 && current_cut < best_prefix_cut {
            best_prefix_cut = current_cut;
            best_prefix = Some(ws.moves.len());
        }
    }

    // Roll back to the best balanced prefix (or all the way if none improved).
    let keep = best_prefix.unwrap_or(0);
    for &v in ws.moves.iter().skip(keep).rev() {
        part[v] = 1 - part[v];
    }
    if (best_prefix_cut as u64) < start_cut {
        *best_cut = best_prefix_cut as u64;
        true
    } else {
        false
    }
}

/// Finds the unlocked vertex with the highest gain on side `from`.
fn best_movable(
    graph: &Graph,
    part: &[u32],
    locked: &[bool],
    gain: &[i64],
    from: u32,
) -> Option<(usize, i64)> {
    let mut best: Option<(usize, i64)> = None;
    for v in 0..graph.num_vertices() {
        if locked[v] || part[v] != from {
            continue;
        }
        if best.is_none_or(|(_, bg)| gain[v] > bg) {
            best = Some((v, gain[v]));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisect::greedy_bisection;
    use crate::testutil::{grid_graph, path_graph};
    use proptest::prelude::*;

    #[test]
    fn fm_fixes_a_bad_path_bisection() {
        let g = path_graph(8);
        // interleaved partition: cut = 7
        let mut part = vec![0u32, 1, 0, 1, 0, 1, 0, 1];
        let cut = fm_refine(&g, &mut part, 4, 10);
        assert_eq!(g.part_weights(&part, 2), vec![4, 4]);
        assert!(cut <= 3, "cut = {cut}");
        assert_eq!(cut, g.cut(&part));
    }

    #[test]
    fn fm_does_not_worsen_an_optimal_bisection() {
        let g = path_graph(8);
        let mut part = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        let cut = fm_refine(&g, &mut part, 4, 5);
        assert_eq!(cut, 1);
        assert_eq!(g.part_weights(&part, 2), vec![4, 4]);
    }

    #[test]
    fn fm_improves_grid_bisection_to_near_optimal() {
        let g = grid_graph(8, 8);
        let mut part = greedy_bisection(&g, 32, 3, 17);
        let before = g.cut(&part);
        let after = fm_refine(&g, &mut part, 32, 20);
        assert!(after <= before);
        assert_eq!(g.part_weights(&part, 2), vec![32, 32]);
        assert!(after <= 10, "cut = {after}");
    }

    #[test]
    fn fm_preserves_balance_even_when_no_improvement_possible() {
        let g = grid_graph(2, 2);
        let mut part = vec![0u32, 0, 1, 1];
        let cut = fm_refine(&g, &mut part, 2, 3);
        assert_eq!(g.part_weights(&part, 2), vec![2, 2]);
        assert_eq!(cut, g.cut(&part));
    }

    #[test]
    fn fm_with_reused_workspace_matches_fresh_workspace() {
        let g = grid_graph(6, 7);
        let mut ws = Workspace::new();
        let mut a = greedy_bisection(&g, 21, 3, 4);
        let mut b = a.clone();
        let cut_a = fm_refine_with(&g, &mut a, 21, 8, &mut ws);
        let cut_b = fm_refine(&g, &mut b, 21, 8);
        assert_eq!(cut_a, cut_b);
        assert_eq!(a, b);
        // run again with the warm workspace
        let mut c = greedy_bisection(&g, 21, 3, 4);
        let cut_c = fm_refine_with(&g, &mut c, 21, 8, &mut ws);
        assert_eq!(cut_c, cut_b);
    }

    proptest! {
        #[test]
        fn prop_fm_never_increases_cut_and_keeps_balance(
            rows in 2u32..7, cols in 2u32..7, seed in 0u64..50,
        ) {
            let g = grid_graph(rows, cols);
            let total = (rows * cols) as u64;
            let target0 = total / 2;
            let mut part = greedy_bisection(&g, target0, 2, seed);
            let before = g.cut(&part);
            let w_before = g.part_weights(&part, 2);
            let after = fm_refine(&g, &mut part, target0, 8);
            prop_assert!(after <= before);
            prop_assert_eq!(after, g.cut(&part));
            prop_assert_eq!(g.part_weights(&part, 2), w_before);
        }
    }
}
