//! Fiduccia–Mattheyses (FM) refinement for two-way partitions.
//!
//! Starting from a balanced bisection, vertices are moved one at a time,
//! always choosing the highest-gain unlocked vertex on the side that is
//! currently at or above its target weight; every vertex moves at most once
//! per pass.  The best balanced prefix of the move sequence is kept.  Passes
//! repeat until no improvement is found.
//!
//! # Gain buckets
//!
//! Vertex selection uses one dense [`BucketQueue`](crate::bucket::BucketQueue) per side instead of the
//! linear `best_movable` scan of the original implementation: FM gains are
//! bounded by `±max_v Σ w(e)` (the maximum weighted degree), so buckets over
//! that range give O(1) selection and O(1) incremental neighbor updates per
//! move, for O(n + E) work per pass instead of O(n²).  The bucket range is
//! additionally capped at O(n + E) (`gain_bucket_bound`); graphs with
//! extreme edge weights clamp into the extreme buckets while exact gains
//! stay in the gain array, so cut accounting never drifts.  Ties inside a
//! bucket are broken LIFO (most recently updated first); the initial fill
//! inserts vertices in descending id order, so among untouched vertices the
//! lowest id is extracted first, matching the scan it replaces.  The whole
//! pass is sequential and allocation-free, hence bit-for-bit deterministic.
//!
//! # Boundary-only passes
//!
//! Only *boundary* vertices (those with at least one cut edge) enter the
//! queues: moving an interior vertex can never be the first step of an
//! improving balanced prefix that FM's single-move-per-pass discipline can
//! complete, but queueing all of them made every pass Ω(n) in queue traffic.
//! Interior vertices are queued lazily the moment a neighbor's move gives
//! them a cut edge, so the reachable move set is unchanged on the instances
//! that matter while pass cost tracks the boundary size — on a large coarse
//! grid that is O(√n) instead of O(n).  A pass also starts from the caller's
//! tracked cut instead of an O(E) `graph.cut` recomputation (the rollback at
//! the end of every pass guarantees the tracked value is exact).
//!
//! Scratch state (gains, the two bucket queues, the move journal) lives in a
//! [`Workspace`], so repeated refinement passes allocate nothing.

use crate::workspace::Workspace;
use crate::Graph;

/// Refines a two-way partition in place.  `target0` is the required total
/// vertex weight of part 0.  Returns the cut after refinement.
///
/// The partition handed in should already satisfy the balance constraint
/// (part-0 weight equal to `target0`, as produced by
/// [`greedy_bisection`](crate::bisect::greedy_bisection)); the refined
/// partition satisfies it again on return.
pub fn fm_refine(graph: &Graph, part: &mut [u32], target0: u64, max_passes: usize) -> u64 {
    fm_refine_with(graph, part, target0, max_passes, &mut Workspace::new())
}

/// Number of deterministic tie-breaking variants cycled through once a pass
/// stops improving (see [`fm_refine_with`]).
const TIE_BREAK_VARIANTS: u8 = 4;

/// Above this many vertices, refinement stops after the first stale pass
/// instead of cycling all tie-breaking variants: on large levels the
/// variants recover at most a fraction of a percent of cut while costing a
/// full pass each, and the multilevel pipeline's quality is pinned by the
/// golden suites on exactly the small/medium sizes where variants do help.
const VARIANT_CAP_VERTICES: usize = 4096;

/// Above [`VARIANT_CAP_VERTICES`], a pass also ends after this many moves
/// without finding a new best balanced prefix.  Without a cap every pass
/// still sweeps the whole graph (each move lazily queues its neighbors, so
/// the move wavefront crosses all of it); hill-climbs this deep essentially
/// never pay off on large levels, and the cap makes pass cost track the
/// boundary size.  Small levels keep the exhaustive sweep.
const STALL_MOVE_CAP: usize = 64;

/// Above [`VARIANT_CAP_VERTICES`], at most this many passes run per level
/// even while they keep improving.  Each large-level pass pays an O(n + E)
/// gain/boundary rebuild; past the first few passes the improvements are a
/// fraction of a percent and cheaper to recover at finer levels.
const LARGE_PASS_CAP: usize = 3;

/// Tie-break variant and pass budget on *interior* hierarchy levels (see
/// [`fm_refine_interior`]): refinement there only guides the projection —
/// the finest level re-refines with the full budget — so interior levels
/// settle for the first two variants and fewer passes.
const INTERIOR_VARIANTS: u8 = 2;

/// Maximum passes per interior hierarchy level (see [`INTERIOR_VARIANTS`]).
const INTERIOR_PASS_CAP: usize = 6;

/// [`fm_refine`] with caller-provided scratch buffers.
pub fn fm_refine_with(
    graph: &Graph,
    part: &mut [u32],
    target0: u64,
    max_passes: usize,
    ws: &mut Workspace,
) -> u64 {
    fm_refine_impl(graph, part, target0, max_passes, false, None, ws)
}

/// [`fm_refine_with`] for *interior* hierarchy levels of a multilevel
/// bisection: the result is only projected further and re-refined on a finer
/// level, so a reduced variant/pass budget loses almost no final quality
/// while skipping the most expensive stale sweeps.  The finest level (and
/// every direct [`fm_refine`] caller) keeps the full budget.
pub(crate) fn fm_refine_interior(
    graph: &Graph,
    part: &mut [u32],
    target0: u64,
    max_passes: usize,
    cut_hint: Option<u64>,
    ws: &mut Workspace,
) -> u64 {
    fm_refine_impl(graph, part, target0, max_passes, true, cut_hint, ws)
}

/// [`fm_refine_with`] plus a caller-provided exact starting cut (full
/// refinement budget; used on the finest level of a multilevel bisection,
/// where the projected cut is known).
pub(crate) fn fm_refine_hinted(
    graph: &Graph,
    part: &mut [u32],
    target0: u64,
    max_passes: usize,
    cut_hint: Option<u64>,
    ws: &mut Workspace,
) -> u64 {
    fm_refine_impl(graph, part, target0, max_passes, false, cut_hint, ws)
}

fn fm_refine_impl(
    graph: &Graph,
    part: &mut [u32],
    target0: u64,
    max_passes: usize,
    interior: bool,
    cut_hint: Option<u64>,
    ws: &mut Workspace,
) -> u64 {
    assert_eq!(part.len(), graph.num_vertices());
    let moved = rebalance_impl(graph, part, target0);
    let gain_bound = gain_bucket_bound(graph);
    // An exact caller-provided cut (the multilevel projection preserves the
    // coarse cut) skips the O(E) recomputation per hierarchy level; any
    // rebalance move invalidates it.
    let mut best_cut = match cut_hint {
        Some(c) if !moved => c,
        _ => graph.cut(part),
    };
    debug_assert!(graph.num_vertices() > 256 || best_cut == graph.cut(part));
    // Part-0 weight is maintained incrementally through every move and
    // rollback, so passes need no O(n) weight rescan either.
    let mut weight0: u64 = (0..graph.num_vertices())
        .filter(|&v| part[v] == 0)
        .map(|v| graph.vertex_weight(v) as u64)
        .sum();
    // Passes repeat while they improve.  When a pass fails to improve, the
    // next pass perturbs the (gain-neutral) tie-breaking — bucket fill order
    // and the side preferred at exact balance — which explores a different
    // move order at identical cost; the pass rollback keeps every variant
    // monotone in the cut.  Refinement stops when all variants are stale.
    let large = graph.num_vertices() > VARIANT_CAP_VERTICES;
    let tie_break_variants: u8 = if large {
        1
    } else if interior {
        INTERIOR_VARIANTS
    } else {
        TIE_BREAK_VARIANTS
    };
    let max_passes = if large {
        max_passes.min(LARGE_PASS_CAP)
    } else if interior {
        max_passes.min(INTERIOR_PASS_CAP)
    } else {
        max_passes
    };
    let mut variant: u8 = 0;
    let mut stale: u8 = 0;
    for _ in 0..max_passes {
        let improved = fm_pass(
            graph,
            part,
            target0,
            &mut best_cut,
            &mut weight0,
            gain_bound,
            variant,
            ws,
        );
        if improved {
            stale = 0;
        } else {
            stale += 1;
            if stale >= tie_break_variants {
                break;
            }
            variant = (variant + 1) % tie_break_variants;
        }
    }
    best_cut
}

/// The largest summed incident edge weight over all vertices — the bound of
/// the FM gain range (moving any vertex changes the cut by at most this).
pub(crate) fn max_weighted_degree(graph: &Graph) -> i64 {
    (0..graph.num_vertices())
        .map(|v| graph.edge_weights(v).iter().map(|&w| w as i64).sum())
        .max()
        .unwrap_or(0)
}

/// The dense bucket range used for refinement and graph growing: the true
/// gain bound ([`max_weighted_degree`]), capped at O(n + E) buckets so the
/// queue's memory and reset cost stay linear in the graph even for extreme
/// edge weights.  Beyond the cap, gains clamp into the extreme buckets
/// (selection degrades gracefully; exact gains are tracked in the gain
/// array, so cut accounting never drifts).
pub(crate) fn gain_bucket_bound(graph: &Graph) -> i64 {
    let cap = (4 * (graph.num_vertices() + graph.num_edges()) as i64).max(256);
    max_weighted_degree(graph).min(cap)
}

/// Greedily restores the balance constraint (part-0 weight equal to
/// `target0`) by moving the highest-gain vertices from the overweight side,
/// as long as every move strictly reduces the imbalance.  With unit vertex
/// weights this always reaches exact balance; with heavier vertices it stops
/// as close to the target as possible.
pub fn rebalance(graph: &Graph, part: &mut [u32], target0: u64) {
    rebalance_impl(graph, part, target0);
}

/// [`rebalance`], reporting whether any vertex was moved (used to decide
/// whether a caller-provided cut hint is still valid).
pub(crate) fn rebalance_impl(graph: &Graph, part: &mut [u32], target0: u64) -> bool {
    let mut weight0: u64 = (0..graph.num_vertices())
        .filter(|&v| part[v] == 0)
        .map(|v| graph.vertex_weight(v) as u64)
        .sum();
    let mut moved = false;
    loop {
        if weight0 == target0 {
            return moved;
        }
        let (from, deficit) = if weight0 > target0 {
            (0u32, weight0 - target0)
        } else {
            (1u32, target0 - weight0)
        };
        // pick the movable vertex with the best gain whose move reduces the
        // imbalance
        let mut best: Option<(usize, i64)> = None;
        for v in 0..graph.num_vertices() {
            if part[v] != from {
                continue;
            }
            let w = graph.vertex_weight(v) as u64;
            if w == 0 || w > 2 * deficit - 1 {
                // moving v would overshoot at least as far as we are off now
                continue;
            }
            let gain: i64 = graph
                .edges_of(v)
                .map(|(u, ew)| {
                    if part[u as usize] == part[v] {
                        -(ew as i64)
                    } else {
                        ew as i64
                    }
                })
                .sum();
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((v, gain));
            }
        }
        match best {
            Some((v, _)) => {
                let w = graph.vertex_weight(v) as u64;
                if from == 0 {
                    weight0 -= w;
                } else {
                    weight0 += w;
                }
                part[v] = 1 - part[v];
                moved = true;
            }
            None => return moved,
        }
    }
}

/// One FM pass.  Returns whether the cut improved.
///
/// `variant` selects one of [`TIE_BREAK_VARIANTS`] gain-neutral tie-breaking
/// rules: bit 0 flips the bucket fill order (descending ids — lowest id at
/// the head — vs ascending), bit 1 flips which side is preferred when both
/// sides are movable at exact balance with equal best gains.
#[allow(clippy::too_many_arguments)]
fn fm_pass(
    graph: &Graph,
    part: &mut [u32],
    target0: u64,
    best_cut: &mut u64,
    weight0: &mut u64,
    gain_bound: i64,
    variant: u8,
    ws: &mut Workspace,
) -> bool {
    let n = graph.num_vertices();
    let Workspace {
        gain,
        boundary,
        locked,
        bq0,
        bq1,
        moves,
        ..
    } = ws;
    // gain[v] = reduction of the cut when v switches sides; a vertex is on
    // the boundary iff any incident edge is cut
    gain.clear();
    boundary.clear();
    for v in 0..n {
        let mut internal = 0i64;
        let mut external = 0i64;
        for (u, w) in graph.edges_of(v) {
            if part[u as usize] == part[v] {
                internal += w as i64;
            } else {
                external += w as i64;
            }
        }
        gain.push(external - internal);
        boundary.push(external > 0);
    }
    Workspace::reset(locked, n, false);
    // fill the per-side queues with boundary vertices only; the default
    // descending order puts the lowest id at the head among equal initial
    // gains (see the module docs)
    bq0.reset(n, gain_bound);
    bq1.reset(n, gain_bound);
    let mut fill = |v: usize| {
        if !boundary[v] {
            return;
        }
        if part[v] == 0 {
            bq0.insert(v, gain[v]);
        } else {
            bq1.insert(v, gain[v]);
        }
    };
    if variant & 1 == 0 {
        (0..n).rev().for_each(&mut fill);
    } else {
        (0..n).for_each(&mut fill);
    }
    let weight0 = &mut *weight0;
    debug_assert!(
        n > 256
            || *weight0
                == (0..n)
                    .filter(|&v| part[v] == 0)
                    .map(|v| graph.vertex_weight(v) as u64)
                    .sum::<u64>()
    );

    // The caller's tracked best cut is exact at pass entry (the previous
    // pass rolled back to the state it reported), so no O(E) recomputation.
    let mut current_cut = *best_cut as i64;
    debug_assert!(n > 256 || current_cut == graph.cut(part) as i64);
    let start_cut = *best_cut;
    moves.clear();
    let mut best_prefix: Option<usize> = None;
    let mut best_prefix_cut = *best_cut as i64;
    let mut moves_since_best = 0usize;

    let stall_cap = if n > VARIANT_CAP_VERTICES {
        STALL_MOVE_CAP
    } else {
        STALL_MOVE_CAP.max(n / 8)
    };
    for _ in 0..n {
        if moves_since_best >= stall_cap {
            break;
        }
        // Move from part 0 if it is over target, from part 1 if under;
        // when exactly on target pick the side offering the better gain.
        let from = if *weight0 > target0 {
            0
        } else if *weight0 < target0 {
            1
        } else {
            match (bq0.peek_max(), bq1.peek_max()) {
                (Some((_, g0)), Some((_, g1))) => {
                    let preferred = u32::from(variant & 2 != 0);
                    match g0.cmp(&g1) {
                        std::cmp::Ordering::Greater => 0,
                        std::cmp::Ordering::Less => 1,
                        std::cmp::Ordering::Equal => preferred,
                    }
                }
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (None, None) => break,
            }
        };
        let popped = if from == 0 {
            bq0.pop_max()
        } else {
            bq1.pop_max()
        };
        let Some((v, _)) = popped else {
            break;
        };
        // apply the move (popping locks v: it can no longer be selected);
        // account with the exact gain — the queue's copy may be clamped
        current_cut -= gain[v];
        locked[v] = true;
        let to = 1 - part[v];
        if part[v] == 0 {
            *weight0 -= graph.vertex_weight(v) as u64;
        } else {
            *weight0 += graph.vertex_weight(v) as u64;
        }
        part[v] = to;
        // incremental neighbor gain updates (instead of any rescans)
        for (u, w) in graph.edges_of(v) {
            let u = u as usize;
            if part[u] == part[v] {
                // u is now on the same side as v: moving u away gets worse
                gain[u] -= 2 * w as i64;
            } else {
                gain[u] += 2 * w as i64;
            }
            let q = if part[u] == 0 { &mut *bq0 } else { &mut *bq1 };
            if q.contains(u) {
                q.update(u, gain[u]);
            } else if !locked[u] && part[u] != part[v] {
                // u was interior (unqueued + unlocked vertices always are)
                // and v's arrival on the other side gave it a cut edge:
                // queue it lazily
                q.insert(u, gain[u]);
            }
        }
        gain[v] = -gain[v];
        moves.push(v);
        #[cfg(debug_assertions)]
        debug_check_incremental_gains(graph, part, gain, locked, bq0, bq1, gain_bound);
        if *weight0 == target0 && current_cut < best_prefix_cut {
            best_prefix_cut = current_cut;
            best_prefix = Some(moves.len());
            moves_since_best = 0;
        } else {
            moves_since_best += 1;
        }
    }

    // Roll back to the best balanced prefix (or all the way if none improved).
    let keep = best_prefix.unwrap_or(0);
    for &v in moves.iter().skip(keep).rev() {
        let w = graph.vertex_weight(v) as u64;
        if part[v] == 0 {
            *weight0 -= w;
        } else {
            *weight0 += w;
        }
        part[v] = 1 - part[v];
    }
    if (best_prefix_cut as u64) < start_cut {
        *best_cut = best_prefix_cut as u64;
        true
    } else {
        false
    }
}

/// Debug-build invariant: after every applied move, the incrementally
/// maintained gains of all still-queued vertices equal gains recomputed from
/// scratch, the bucket queues store exactly those values, and every
/// unlocked *boundary* vertex is queued (the lazy-insertion invariant of
/// boundary-only passes).  Skipped above 256 vertices to keep debug test
/// runs fast.
#[cfg(debug_assertions)]
fn debug_check_incremental_gains(
    graph: &Graph,
    part: &[u32],
    gain: &[i64],
    locked: &[bool],
    bq0: &crate::bucket::BucketQueue,
    bq1: &crate::bucket::BucketQueue,
    gain_bound: i64,
) {
    let n = graph.num_vertices();
    if n > 256 {
        return;
    }
    for v in 0..n {
        let queued = if part[v] == 0 {
            bq0.contains(v)
        } else {
            bq1.contains(v)
        };
        let mut internal = 0i64;
        let mut external = 0i64;
        for (u, w) in graph.edges_of(v) {
            if part[u as usize] == part[v] {
                internal += w as i64;
            } else {
                external += w as i64;
            }
        }
        if !queued {
            assert!(
                locked[v] || external == 0,
                "unlocked boundary vertex {v} missing from its queue"
            );
            continue;
        }
        let fresh = external - internal;
        assert_eq!(
            gain[v], fresh,
            "incremental gain of vertex {v} diverged from a fresh recomputation"
        );
        let stored = if part[v] == 0 {
            bq0.gain(v)
        } else {
            bq1.gain(v)
        };
        assert_eq!(
            stored,
            Some(fresh.clamp(-gain_bound, gain_bound)),
            "bucket queue holds a stale gain for vertex {v}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisect::greedy_bisection;
    use crate::testutil::{grid_graph, path_graph};
    use proptest::prelude::*;

    #[test]
    fn fm_fixes_a_bad_path_bisection() {
        let g = path_graph(8);
        // interleaved partition: cut = 7
        let mut part = vec![0u32, 1, 0, 1, 0, 1, 0, 1];
        let cut = fm_refine(&g, &mut part, 4, 10);
        assert_eq!(g.part_weights(&part, 2), vec![4, 4]);
        assert!(cut <= 3, "cut = {cut}");
        assert_eq!(cut, g.cut(&part));
    }

    #[test]
    fn fm_does_not_worsen_an_optimal_bisection() {
        let g = path_graph(8);
        let mut part = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        let cut = fm_refine(&g, &mut part, 4, 5);
        assert_eq!(cut, 1);
        assert_eq!(g.part_weights(&part, 2), vec![4, 4]);
    }

    #[test]
    fn fm_improves_grid_bisection_to_near_optimal() {
        let g = grid_graph(8, 8);
        let mut part = greedy_bisection(&g, 32, 3, 17);
        let before = g.cut(&part);
        let after = fm_refine(&g, &mut part, 32, 20);
        assert!(after <= before);
        assert_eq!(g.part_weights(&part, 2), vec![32, 32]);
        assert!(after <= 10, "cut = {after}");
    }

    #[test]
    fn fm_preserves_balance_even_when_no_improvement_possible() {
        let g = grid_graph(2, 2);
        let mut part = vec![0u32, 0, 1, 1];
        let cut = fm_refine(&g, &mut part, 2, 3);
        assert_eq!(g.part_weights(&part, 2), vec![2, 2]);
        assert_eq!(cut, g.cut(&part));
    }

    #[test]
    fn fm_with_reused_workspace_matches_fresh_workspace() {
        let g = grid_graph(6, 7);
        let mut ws = Workspace::new();
        let mut a = greedy_bisection(&g, 21, 3, 4);
        let mut b = a.clone();
        let cut_a = fm_refine_with(&g, &mut a, 21, 8, &mut ws);
        let cut_b = fm_refine(&g, &mut b, 21, 8);
        assert_eq!(cut_a, cut_b);
        assert_eq!(a, b);
        // run again with the warm workspace
        let mut c = greedy_bisection(&g, 21, 3, 4);
        let cut_c = fm_refine_with(&g, &mut c, 21, 8, &mut ws);
        assert_eq!(cut_c, cut_b);
    }

    #[test]
    fn max_weighted_degree_accounts_for_edge_weights() {
        let g = Graph::from_edges(4, &[(0, 1, 2), (1, 2, 5), (2, 3, 1)]);
        assert_eq!(max_weighted_degree(&g), 7); // vertex 1: 2 + 5
        assert_eq!(max_weighted_degree(&Graph::from_edges(1, &[])), 0);
    }

    #[test]
    fn fm_survives_extreme_edge_weights_via_clamping() {
        // max weighted degree ~2e9 would mean ~4e9 dense buckets; the O(n+E)
        // cap clamps the range while exact gains keep the accounting correct
        let w = 1_000_000_000u32;
        let g = Graph::from_edges(6, &[(0, 1, w), (1, 2, w), (2, 3, 1), (3, 4, w), (4, 5, w)]);
        assert_eq!(gain_bucket_bound(&g), 256);
        let mut part = vec![0u32, 1, 0, 1, 0, 1];
        let before = g.cut(&part);
        let cut = fm_refine(&g, &mut part, 3, 10);
        assert_eq!(g.part_weights(&part, 2), vec![3, 3]);
        assert_eq!(cut, g.cut(&part));
        assert!(cut <= before);
    }

    #[test]
    fn fm_handles_weighted_edges_within_the_gain_bound() {
        // a weighted path where the cheap cut is between the light edges
        let g = Graph::from_edges(6, &[(0, 1, 9), (1, 2, 9), (2, 3, 1), (3, 4, 9), (4, 5, 9)]);
        let mut part = vec![0u32, 1, 0, 1, 0, 1];
        let cut = fm_refine(&g, &mut part, 3, 10);
        assert_eq!(g.part_weights(&part, 2), vec![3, 3]);
        assert_eq!(cut, g.cut(&part));
        assert!(cut <= 1, "cut = {cut}");
    }

    proptest! {
        #[test]
        fn prop_fm_never_increases_cut_and_keeps_balance(
            rows in 2u32..7, cols in 2u32..7, seed in 0u64..50,
        ) {
            let g = grid_graph(rows, cols);
            let total = (rows * cols) as u64;
            let target0 = total / 2;
            let mut part = greedy_bisection(&g, target0, 2, seed);
            let before = g.cut(&part);
            let w_before = g.part_weights(&part, 2);
            let after = fm_refine(&g, &mut part, target0, 8);
            prop_assert!(after <= before);
            prop_assert_eq!(after, g.cut(&part));
            prop_assert_eq!(g.part_weights(&part, 2), w_before);
        }

        /// Runs bucket-queue FM on random weighted graphs.  In debug builds
        /// (the default for `cargo test`) every applied move additionally
        /// verifies, inside `fm_pass`, that the incrementally maintained
        /// gains equal freshly recomputed gains and that the bucket queues
        /// mirror them exactly.
        #[test]
        fn prop_fm_incremental_gains_stay_consistent_on_weighted_graphs(
            n in 4usize..24,
            raw_edges in proptest::collection::vec(0u64..1_000_000, 4..60),
            seed in 0u64..20,
        ) {
            let edges: Vec<(u32, u32, u32)> = raw_edges
                .iter()
                .map(|&e| {
                    let u = (e % n as u64) as u32;
                    let v = ((e / n as u64) % n as u64) as u32;
                    let w = ((e / (n * n) as u64) % 9 + 1) as u32;
                    (u, v, w)
                })
                .filter(|&(u, v, _)| u != v)
                .collect();
            let g = Graph::from_edges(n, &edges);
            let target0 = (n / 2) as u64;
            let mut part = greedy_bisection(&g, target0, 2, seed);
            let before = g.cut(&part);
            let after = fm_refine(&g, &mut part, target0, 6);
            prop_assert!(after <= before);
            prop_assert_eq!(after, g.cut(&part));
        }
    }
}
