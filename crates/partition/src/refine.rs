//! Parallel k-way pairwise-swap local search.
//!
//! After the recursive bisection produced a k-way partition, a randomised
//! local search swaps pairs of vertices between parts whenever this reduces
//! the edge cut.  This mirrors the local-search configuration the paper uses
//! for VieM: "we allowed swaps between any connected pair of vertices, i.e.,
//! we considered the largest search space".
//!
//! # Parallel sweep with deterministic conflict resolution
//!
//! Each round runs in two phases:
//!
//! 1. **Propose** — every boundary vertex `v` evaluates its candidate
//!    partners (neighbors in other parts plus `RANDOM_PROBES` random
//!    probes) against the round-start partition and proposes its best
//!    positive-gain swap.  Candidate randomness comes from a per-vertex
//!    ChaCha8 stream derived from `(seed, round, v)`, so proposals are a pure
//!    function of the snapshot — trivially parallel and order-independent.
//! 2. **Commit** — proposals are grouped by the (unordered) pair of parts
//!    they exchange, and the part pairs are colored with a round-robin
//!    tournament schedule so that every color is a set of *disjoint* pairs.
//!    Colors are swept in ascending order; within a color the pairs commit
//!    concurrently under `rayon`.  A commit re-validates its swap against the
//!    live partition (parts unchanged, gain still positive) before applying
//!    it.
//!
//! Concurrent commits cannot interfere: a worker for pair `{a, b}` only
//! rewrites assignments inside `{a, b}`, and an edge towards any
//! concurrently-swapped vertex connects two *different* pairs of the same
//! color — such an edge is cut before and after either swap, so its gain
//! contribution is zero no matter how the stores interleave.  Every quantity
//! a worker computes is therefore independent of scheduling, which makes the
//! result **identical for every thread count** (and identical to the fully
//! sequential sweep selected by [`RefineConfig::parallel`] `= false`).
//!
//! Swapping two vertices never changes part sizes, so the exact balance of
//! the partition is preserved by construction.

use crate::Graph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};

/// Number of random swap probes tried per boundary vertex and round, in
/// addition to its cross-part neighbors (tuned in PR 1: 8 probes measurably
/// improve escape from local optima on grid graphs at modest cost).
const RANDOM_PROBES: usize = 8;

/// A proposed swap `(v, u)` between the parts of vertices `v` and `u`.
type Proposal = (u32, u32);

/// The proposals of one part pair, keyed by the (sorted) pair.
type PairGroup = ((u32, u32), Vec<Proposal>);

/// Result of the k-way refinement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefineStats {
    /// Edge cut before refinement.
    pub cut_before: u64,
    /// Edge cut after refinement.
    pub cut_after: u64,
    /// Number of swaps applied.
    pub swaps: u64,
}

/// Configuration of [`refine_kway_with`].
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// Full sweeps over the boundary vertices (each sweep proposes and
    /// commits swaps for every boundary vertex); sweeps stop early when no
    /// improving swap is found.
    pub rounds: usize,
    /// Seed of the per-vertex probe streams.
    pub seed: u64,
    /// Whether the propose phase and the disjoint part-pairs of each commit
    /// color may run on separate threads.  The result does not depend on
    /// this flag (or on the thread count); disable it to benchmark the
    /// sequential baseline.
    pub parallel: bool,
}

impl RefineConfig {
    /// Creates a parallel configuration with the given effort and seed.
    pub fn new(rounds: usize, seed: u64) -> Self {
        RefineConfig {
            rounds,
            seed,
            parallel: true,
        }
    }

    /// Enables or disables parallel execution (the result is unaffected).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Refines a k-way partition in place by pairwise vertex swaps, running the
/// parallel sweep described in the [module documentation](self).
pub fn refine_kway(graph: &Graph, part: &mut [u32], rounds: usize, seed: u64) -> RefineStats {
    refine_kway_with(graph, part, &RefineConfig::new(rounds, seed))
}

/// [`refine_kway`] with an explicit [`RefineConfig`].
pub fn refine_kway_with(graph: &Graph, part: &mut [u32], cfg: &RefineConfig) -> RefineStats {
    let n = graph.num_vertices();
    assert_eq!(part.len(), n);
    let cut_before = graph.cut(part);
    let num_parts = part.iter().max().map_or(0, |&p| p as usize + 1);
    if num_parts < 2 {
        return RefineStats {
            cut_before,
            cut_after: cut_before,
            swaps: 0,
        };
    }
    // Shared atomic view of the partition: the propose phase reads it with no
    // writers present, and commit workers write only entries of their own
    // disjoint part pair (relaxed ordering suffices — the phase boundaries
    // provide the synchronisation edges).
    let parts: Vec<AtomicU32> = part.iter().map(|&p| AtomicU32::new(p)).collect();
    let num_colors = pair_colors(num_parts);
    let mut swaps = 0u64;

    for round in 0..cfg.rounds {
        // --- propose ---------------------------------------------------
        let boundary: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                let pv = parts[v as usize].load(Ordering::Relaxed);
                graph
                    .neighbors(v as usize)
                    .iter()
                    .any(|&u| parts[u as usize].load(Ordering::Relaxed) != pv)
            })
            .collect();
        if boundary.is_empty() {
            break;
        }
        let propose = |&v: &u32| propose_swap(graph, &parts, v as usize, cfg.seed, round);
        let proposals: Vec<Option<(u32, u32)>> = if cfg.parallel {
            boundary.par_iter().map(propose).collect()
        } else {
            boundary.iter().map(propose).collect()
        };

        // --- group by part pair, then by color --------------------------
        // BTreeMap iteration keeps the pair order deterministic; proposals
        // stay in ascending-vertex order within a pair.
        let mut by_pair: BTreeMap<(u32, u32), Vec<Proposal>> = BTreeMap::new();
        for (v, u) in proposals.into_iter().flatten() {
            let pv = parts[v as usize].load(Ordering::Relaxed);
            let pu = parts[u as usize].load(Ordering::Relaxed);
            by_pair
                .entry((pv.min(pu), pv.max(pu)))
                .or_default()
                .push((v, u));
        }
        let mut per_color: Vec<Vec<PairGroup>> = vec![Vec::new(); num_colors];
        for (pair, group) in by_pair {
            per_color[pair_color(pair, num_parts)].push((pair, group));
        }

        // --- commit, color by color -------------------------------------
        let mut round_swaps = 0u64;
        for color in per_color {
            let commit = |(pair, group): PairGroup| commit_pair(graph, &parts, pair, &group);
            let counts: Vec<u64> = if cfg.parallel {
                color.into_par_iter().map(commit).collect()
            } else {
                color.into_iter().map(commit).collect()
            };
            round_swaps += counts.iter().sum::<u64>();
        }
        if round_swaps == 0 {
            break;
        }
        swaps += round_swaps;
    }

    for (slot, p) in part.iter_mut().zip(&parts) {
        *slot = p.load(Ordering::Relaxed);
    }
    RefineStats {
        cut_before,
        cut_after: graph.cut(part),
        swaps,
    }
}

/// Evaluates the candidate partners of boundary vertex `v` against the
/// round-start partition and returns its best positive-gain swap, if any.
fn propose_swap(
    graph: &Graph,
    parts: &[AtomicU32],
    v: usize,
    seed: u64,
    round: usize,
) -> Option<(u32, u32)> {
    let n = graph.num_vertices();
    let pv = parts[v].load(Ordering::Relaxed);
    let mut rng = probe_rng(seed, round, v);
    let mut best: Option<(u32, i64)> = None;
    let consider = |u: usize, best: &mut Option<(u32, i64)>| {
        if parts[u].load(Ordering::Relaxed) == pv {
            return;
        }
        let gain = swap_gain_view(graph, parts, v, u);
        if gain > 0 && best.is_none_or(|(_, bg)| gain > bg) {
            *best = Some((u as u32, gain));
        }
    };
    for &u in graph.neighbors(v) {
        consider(u as usize, &mut best);
    }
    for _ in 0..RANDOM_PROBES {
        let u = rng.gen_range(0..n);
        consider(u, &mut best);
    }
    best.map(|(u, _)| (v as u32, u))
}

/// Re-validates and applies the proposals of one part pair against the live
/// partition; returns the number of swaps applied.
fn commit_pair(
    graph: &Graph,
    parts: &[AtomicU32],
    (a, b): (u32, u32),
    group: &[(u32, u32)],
) -> u64 {
    let mut applied = 0u64;
    for &(v, u) in group {
        let (v, u) = (v as usize, u as usize);
        let pv = parts[v].load(Ordering::Relaxed);
        let pu = parts[u].load(Ordering::Relaxed);
        // an earlier color (or an earlier commit of this pair) may have moved
        // either endpoint out of the pair
        if !((pv == a && pu == b) || (pv == b && pu == a)) {
            continue;
        }
        if swap_gain_view(graph, parts, v, u) > 0 {
            parts[v].store(pu, Ordering::Relaxed);
            parts[u].store(pv, Ordering::Relaxed);
            applied += 1;
        }
    }
    applied
}

/// The number of colors of the round-robin pair schedule for `k` parts: one
/// less than `k` rounded up to even.
fn pair_colors(k: usize) -> usize {
    (k + (k & 1)).saturating_sub(1).max(1)
}

/// The color of part pair `(a, b)`, `a < b`, under the circle-method
/// round-robin schedule over `k` parts: within one color every part occurs
/// in at most one pair.
fn pair_color((a, b): (u32, u32), k: usize) -> usize {
    debug_assert!(a < b && (b as usize) < k);
    let k_even = k + (k & 1);
    let m = k_even - 1; // odd number of "rotating" players
    if b as usize == k_even - 1 {
        // the fixed player meets player `a` in round `a`
        a as usize
    } else {
        // rotating players i, j meet in the round r with i + j ≡ 2r (mod m)
        let inv2 = m.div_ceil(2); // 2 * inv2 ≡ 1 (mod m) for odd m
        ((a as usize + b as usize) * inv2) % m
    }
}

/// The deterministic probe stream of boundary vertex `v` in `round`:
/// independent ChaCha8 streams per `(seed, round, vertex)` (PR 1 re-seeded
/// every round from the same position, so all rounds probed the same
/// partners).
pub(crate) fn probe_rng(seed: u64, round: usize, v: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix(splitmix(splitmix(seed) ^ round as u64) ^ v as u64))
}

/// SplitMix64 finaliser, used to decorrelate the probe-stream coordinates.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform read access to a partition, so the gain computation serves both
/// the plain public API and the atomic view used by the parallel sweep.
trait PartView {
    fn part(&self, v: usize) -> u32;
}

impl PartView for [u32] {
    #[inline]
    fn part(&self, v: usize) -> u32 {
        self[v]
    }
}

impl PartView for [AtomicU32] {
    #[inline]
    fn part(&self, v: usize) -> u32 {
        self[v].load(Ordering::Relaxed)
    }
}

/// The reduction of the edge cut obtained by swapping the part assignments of
/// vertices `a` and `b` (positive = improvement).
pub fn swap_gain(graph: &Graph, part: &[u32], a: usize, b: usize) -> i64 {
    swap_gain_view(graph, part, a, b)
}

fn swap_gain_view<P: PartView + ?Sized>(graph: &Graph, part: &P, a: usize, b: usize) -> i64 {
    if a == b || part.part(a) == part.part(b) {
        return 0;
    }
    let pa = part.part(a);
    let pb = part.part(b);
    let mut gain = 0i64;
    for (u, w) in graph.edges_of(a) {
        let u = u as usize;
        if u == b {
            // the edge a-b stays cut after the swap
            continue;
        }
        // before: cut if pu != pa; after: cut if pu != pb
        gain += cut_delta(part.part(u), pa, pb, w);
    }
    for (u, w) in graph.edges_of(b) {
        let u = u as usize;
        if u == a {
            continue;
        }
        gain += cut_delta(part.part(u), pb, pa, w);
    }
    gain
}

/// Contribution to the gain of one edge incident to a swapped vertex that
/// moves from part `from` to part `to`, with the other endpoint in `pu`.
#[inline]
fn cut_delta(pu: u32, from: u32, to: u32, w: u32) -> i64 {
    let before = (pu != from) as i64;
    let after = (pu != to) as i64;
    (before - after) * w as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{partition, PartitionConfig};
    use crate::testutil::{grid_graph, path_graph};
    use proptest::prelude::*;

    #[test]
    fn swap_gain_detects_obvious_improvement() {
        // path 0-1-2-3 with parts [0,1,0,1]: swapping 1 and 2 removes 2 cut edges
        let g = path_graph(4);
        let part = vec![0u32, 1, 0, 1];
        assert_eq!(g.cut(&part), 3);
        let gain = swap_gain(&g, &part, 1, 2);
        assert_eq!(gain, 2);
        // swapping same-part vertices is a no-op
        assert_eq!(swap_gain(&g, &part, 0, 2), 0);
        assert_eq!(swap_gain(&g, &part, 1, 1), 0);
    }

    #[test]
    fn refine_fixes_interleaved_path() {
        let g = path_graph(8);
        let mut part = vec![0u32, 1, 0, 1, 0, 1, 0, 1];
        let stats = refine_kway(&g, &mut part, 10, 1);
        assert_eq!(stats.cut_before, 7);
        assert!(stats.cut_after < stats.cut_before);
        assert_eq!(stats.cut_after, g.cut(&part));
        // part sizes preserved
        assert_eq!(g.part_weights(&part, 2), vec![4, 4]);
    }

    #[test]
    fn refine_preserves_part_sizes_on_grid() {
        let g = grid_graph(8, 8);
        let cfg = PartitionConfig::new(vec![16; 4]).with_seed(3);
        let mut part = partition(&g, &cfg).unwrap();
        let before_sizes = g.part_weights(&part, 4);
        let stats = refine_kway(&g, &mut part, 5, 9);
        assert_eq!(g.part_weights(&part, 4), before_sizes);
        assert!(stats.cut_after <= stats.cut_before);
    }

    #[test]
    fn refine_improves_a_random_partition_substantially() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let g = grid_graph(10, 10);
        // random balanced partition into 5 parts of 20
        let mut part: Vec<u32> = (0..100).map(|i| (i % 5) as u32).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        part.shuffle(&mut rng);
        let before = g.cut(&part);
        let stats = refine_kway(&g, &mut part, 30, 5);
        assert!(
            stats.cut_after < before / 2,
            "{} -> {}",
            before,
            stats.cut_after
        );
        assert_eq!(g.part_weights(&part, 5), vec![20; 5]);
    }

    #[test]
    fn sequential_flag_matches_parallel_result_exactly() {
        let g = grid_graph(12, 12);
        let cfg = PartitionConfig::new(vec![24; 6]).with_seed(8);
        let base = partition(&g, &cfg).unwrap();
        let mut par = base.clone();
        let mut seq = base.clone();
        let stats_par = refine_kway_with(&g, &mut par, &RefineConfig::new(6, 11));
        let stats_seq =
            refine_kway_with(&g, &mut seq, &RefineConfig::new(6, 11).with_parallel(false));
        assert_eq!(par, seq);
        assert_eq!(stats_par, stats_seq);
    }

    #[test]
    fn probe_streams_differ_between_rounds() {
        // Regression test for the PR 1 bug where every round re-seeded the
        // probe RNG from the same stream position: the probe partners of a
        // vertex must differ between consecutive rounds.
        for v in [0usize, 3, 17] {
            let probes = |round: usize| -> Vec<usize> {
                let mut rng = probe_rng(42, round, v);
                (0..RANDOM_PROBES).map(|_| rng.gen_range(0..1000)).collect()
            };
            assert_ne!(probes(1), probes(2), "vertex {v}: round 2 repeats round 1");
            assert_ne!(probes(0), probes(1), "vertex {v}: round 1 repeats round 0");
        }
        // ... and between vertices within a round
        assert_ne!(
            {
                let mut r = probe_rng(42, 0, 1);
                r.gen_range(0..u64::MAX)
            },
            {
                let mut r = probe_rng(42, 0, 2);
                r.gen_range(0..u64::MAX)
            }
        );
    }

    #[test]
    fn pair_coloring_is_a_proper_schedule() {
        // every pair gets a color below the color count, and no two pairs of
        // the same color share a part
        for k in 2usize..14 {
            let colors = pair_colors(k);
            let mut seen: Vec<Vec<(u32, u32)>> = vec![Vec::new(); colors];
            for a in 0..k as u32 {
                for b in (a + 1)..k as u32 {
                    let c = pair_color((a, b), k);
                    assert!(c < colors, "k={k}: color {c} out of range");
                    for &(x, y) in &seen[c] {
                        assert!(
                            x != a && x != b && y != a && y != b,
                            "k={k}: pairs ({x},{y}) and ({a},{b}) share color {c}"
                        );
                    }
                    seen[c].push((a, b));
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_refine_never_worsens_and_preserves_sizes(
            rows in 2u32..7, cols in 2u32..7, seed in 0u64..20,
        ) {
            let g = grid_graph(rows, cols);
            let n = (rows * cols) as usize;
            let parts = 3.min(n);
            let mut assignment: Vec<u32> = (0..n).map(|i| (i % parts) as u32).collect();
            let sizes_before = g.part_weights(&assignment, parts);
            let before = g.cut(&assignment);
            let stats = refine_kway(&g, &mut assignment, 4, seed);
            prop_assert!(stats.cut_after <= before);
            prop_assert_eq!(g.part_weights(&assignment, parts), sizes_before);
        }

        #[test]
        fn prop_parallel_and_sequential_refine_agree(
            rows in 3u32..8, cols in 3u32..8, parts in 2usize..6, seed in 0u64..10,
        ) {
            let g = grid_graph(rows, cols);
            let n = (rows * cols) as usize;
            let mut a: Vec<u32> = (0..n).map(|i| (i % parts) as u32).collect();
            let mut b = a.clone();
            let sp = refine_kway_with(&g, &mut a, &RefineConfig::new(3, seed));
            let ss = refine_kway_with(&g, &mut b, &RefineConfig::new(3, seed).with_parallel(false));
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(sp, ss);
        }
    }
}
