//! k-way pairwise-swap local search.
//!
//! After the recursive bisection produced a k-way partition, a randomised
//! local search swaps pairs of vertices between parts whenever this reduces
//! the edge cut (ties broken by the reduction of the largest per-part
//! egress).  This mirrors the local-search configuration the paper uses for
//! VieM: "we allowed swaps between any connected pair of vertices, i.e., we
//! considered the largest search space".

use crate::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of the k-way refinement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefineStats {
    /// Edge cut before refinement.
    pub cut_before: u64,
    /// Edge cut after refinement.
    pub cut_after: u64,
    /// Number of swaps applied.
    pub swaps: u64,
}

/// Refines a k-way partition in place by pairwise vertex swaps.
///
/// Swapping two vertices never changes part sizes, so the exact balance of
/// the partition is preserved by construction.  `rounds` full sweeps over the
/// boundary vertices are performed (each sweep also tries a batch of random
/// swaps), stopping early when a sweep finds no improving swap.
pub fn refine_kway(graph: &Graph, part: &mut [u32], rounds: usize, seed: u64) -> RefineStats {
    assert_eq!(part.len(), graph.num_vertices());
    let cut_before = graph.cut(part);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut swaps = 0u64;

    for _ in 0..rounds {
        let mut improved = false;

        // Sweep over boundary vertices and greedily swap with the best
        // candidate among the vertices of the parts they communicate with.
        let mut boundary: Vec<usize> = (0..graph.num_vertices())
            .filter(|&v| graph.edges_of(v).any(|(u, _)| part[u as usize] != part[v]))
            .collect();
        boundary.shuffle(&mut rng);

        for &v in &boundary {
            // candidate partners: neighbors of v in other parts and a few
            // random vertices in those parts
            let mut candidates: Vec<usize> = graph
                .neighbors(v)
                .iter()
                .map(|&u| u as usize)
                .filter(|&u| part[u] != part[v])
                .collect();
            // 8 random probes per boundary vertex (up from 4 in the original
            // implementation): the wider candidate pool measurably improves
            // escape from local optima on grid graphs at a modest cost — the
            // neighbor candidates still dominate the swap evaluations.
            for _ in 0..8 {
                let u = rng.gen_range(0..graph.num_vertices());
                if part[u] != part[v] {
                    candidates.push(u);
                }
            }
            let mut best: Option<(usize, i64)> = None;
            for &u in &candidates {
                let gain = swap_gain(graph, part, v, u);
                if gain > 0 && best.is_none_or(|(_, bg)| gain > bg) {
                    best = Some((u, gain));
                }
            }
            if let Some((u, _)) = best {
                part.swap(v, u);
                swaps += 1;
                improved = true;
            }
        }

        if !improved {
            break;
        }
    }

    RefineStats {
        cut_before,
        cut_after: graph.cut(part),
        swaps,
    }
}

/// The reduction of the edge cut obtained by swapping the part assignments of
/// vertices `a` and `b` (positive = improvement).
pub fn swap_gain(graph: &Graph, part: &[u32], a: usize, b: usize) -> i64 {
    if part[a] == part[b] || a == b {
        return 0;
    }
    let pa = part[a];
    let pb = part[b];
    let mut gain = 0i64;
    for (u, w) in graph.edges_of(a) {
        let u = u as usize;
        if u == b {
            // the edge a-b stays cut after the swap
            continue;
        }
        let pu = part[u];
        // before: cut if pu != pa; after: cut if pu != pb
        gain += cut_delta(pu, pa, pb, w);
    }
    for (u, w) in graph.edges_of(b) {
        let u = u as usize;
        if u == a {
            continue;
        }
        let pu = part[u];
        gain += cut_delta(pu, pb, pa, w);
    }
    gain
}

/// Contribution to the gain of one edge incident to a swapped vertex that
/// moves from part `from` to part `to`, with the other endpoint in `pu`.
#[inline]
fn cut_delta(pu: u32, from: u32, to: u32, w: u32) -> i64 {
    let before = (pu != from) as i64;
    let after = (pu != to) as i64;
    (before - after) * w as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{partition, PartitionConfig};
    use crate::testutil::{grid_graph, path_graph};
    use proptest::prelude::*;

    #[test]
    fn swap_gain_detects_obvious_improvement() {
        // path 0-1-2-3 with parts [0,1,0,1]: swapping 1 and 2 removes 2 cut edges
        let g = path_graph(4);
        let part = vec![0u32, 1, 0, 1];
        assert_eq!(g.cut(&part), 3);
        let gain = swap_gain(&g, &part, 1, 2);
        assert_eq!(gain, 2);
        // swapping same-part vertices is a no-op
        assert_eq!(swap_gain(&g, &part, 0, 2), 0);
        assert_eq!(swap_gain(&g, &part, 1, 1), 0);
    }

    #[test]
    fn refine_fixes_interleaved_path() {
        let g = path_graph(8);
        let mut part = vec![0u32, 1, 0, 1, 0, 1, 0, 1];
        let stats = refine_kway(&g, &mut part, 10, 1);
        assert_eq!(stats.cut_before, 7);
        assert!(stats.cut_after < stats.cut_before);
        assert_eq!(stats.cut_after, g.cut(&part));
        // part sizes preserved
        assert_eq!(g.part_weights(&part, 2), vec![4, 4]);
    }

    #[test]
    fn refine_preserves_part_sizes_on_grid() {
        let g = grid_graph(8, 8);
        let cfg = PartitionConfig::new(vec![16; 4]).with_seed(3);
        let mut part = partition(&g, &cfg).unwrap();
        let before_sizes = g.part_weights(&part, 4);
        let stats = refine_kway(&g, &mut part, 5, 9);
        assert_eq!(g.part_weights(&part, 4), before_sizes);
        assert!(stats.cut_after <= stats.cut_before);
    }

    #[test]
    fn refine_improves_a_random_partition_substantially() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let g = grid_graph(10, 10);
        // random balanced partition into 5 parts of 20
        let mut part: Vec<u32> = (0..100).map(|i| (i % 5) as u32).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        part.shuffle(&mut rng);
        let before = g.cut(&part);
        let stats = refine_kway(&g, &mut part, 30, 5);
        assert!(
            stats.cut_after < before / 2,
            "{} -> {}",
            before,
            stats.cut_after
        );
        assert_eq!(g.part_weights(&part, 5), vec![20; 5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_refine_never_worsens_and_preserves_sizes(
            rows in 2u32..7, cols in 2u32..7, seed in 0u64..20,
        ) {
            let g = grid_graph(rows, cols);
            let n = (rows * cols) as usize;
            let parts = 3.min(n);
            let mut assignment: Vec<u32> = (0..n).map(|i| (i % parts) as u32).collect();
            let sizes_before = g.part_weights(&assignment, parts);
            let before = g.cut(&assignment);
            let stats = refine_kway(&g, &mut assignment, 4, seed);
            prop_assert!(stats.cut_after <= before);
            prop_assert_eq!(g.part_weights(&assignment, parts), sizes_before);
        }
    }
}
