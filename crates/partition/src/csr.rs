//! Undirected weighted graphs in compressed sparse row (CSR) form.

/// An undirected graph with integer edge and vertex weights, stored in CSR
/// form (every undirected edge appears in the adjacency of both endpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<u32>,
    vwgt: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an undirected edge list `(u, v, weight)`.
    ///
    /// Self loops are dropped; parallel edges are merged by summing their
    /// weights.  All vertex weights are one.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32, u32)]) -> Self {
        let mut adj: Vec<std::collections::BTreeMap<u32, u32>> =
            vec![std::collections::BTreeMap::new(); num_vertices];
        for &(u, v, w) in edges {
            if u == v {
                continue;
            }
            assert!((u as usize) < num_vertices && (v as usize) < num_vertices);
            *adj[u as usize].entry(v).or_insert(0) += w;
            *adj[v as usize].entry(u).or_insert(0) += w;
        }
        let mut xadj = Vec::with_capacity(num_vertices + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        xadj.push(0);
        for m in adj {
            for (v, w) in m {
                adjncy.push(v);
                adjwgt.push(w);
            }
            xadj.push(adjncy.len());
        }
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt: vec![1; num_vertices],
        }
    }

    /// Builds a graph directly from CSR arrays (must already be symmetric).
    pub fn from_csr(xadj: Vec<usize>, adjncy: Vec<u32>, adjwgt: Vec<u32>, vwgt: Vec<u32>) -> Self {
        assert_eq!(xadj.len(), vwgt.len() + 1);
        assert_eq!(adjncy.len(), *xadj.last().unwrap_or(&0));
        assert_eq!(adjncy.len(), adjwgt.len());
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Builds a graph from a directed CSR adjacency (such as the Cartesian
    /// communication graph of a symmetric stencil).  The undirected weight
    /// of `{a, b}` (with `a < b`) is the number of times `b` appears in
    /// `a`'s row, or — when it never does — the number of times `a` appears
    /// in `b`'s row, so an edge present in either direction is recorded
    /// exactly once.
    ///
    /// Runs in O(V + E): rows are deduplicated into multiplicity lists with
    /// a marker array, and reverse-edge presence is answered by marker
    /// stamps over a transposed presence list instead of the former
    /// O(degree) `contains` scan per edge (which was quadratic on dense
    /// rows).
    pub fn from_directed_csr(xadj: &[usize], adjncy: &[u32]) -> Self {
        let n = xadj.len() - 1;
        assert!(n < u32::MAX as usize);
        // 1. deduplicate every row into (target, multiplicity) lists,
        //    preserving first-occurrence order
        let mut mult_xadj = Vec::with_capacity(n + 1);
        let mut mult_adj: Vec<u32> = Vec::with_capacity(adjncy.len());
        let mut mult_cnt: Vec<u32> = Vec::with_capacity(adjncy.len());
        let mut marker = vec![u32::MAX; n];
        let mut slot = vec![0u32; n];
        mult_xadj.push(0usize);
        for u in 0..n {
            for &v in &adjncy[xadj[u]..xadj[u + 1]] {
                let vi = v as usize;
                assert!(vi < n);
                if marker[vi] != u as u32 {
                    marker[vi] = u as u32;
                    slot[vi] = mult_adj.len() as u32;
                    mult_adj.push(v);
                    mult_cnt.push(1);
                } else {
                    mult_cnt[slot[vi] as usize] += 1;
                }
            }
            mult_xadj.push(mult_adj.len());
        }
        // 2. transposed presence lists: row `t` holds every source whose
        //    (deduplicated) row mentions `t`
        let mut trans_xadj = vec![0usize; n + 1];
        for &t in &mult_adj {
            trans_xadj[t as usize + 1] += 1;
        }
        for t in 0..n {
            trans_xadj[t + 1] += trans_xadj[t];
        }
        let mut trans_adj = vec![0u32; mult_adj.len()];
        let mut cursor: Vec<usize> = trans_xadj[..n].to_vec();
        for s in 0..n {
            for &t in &mult_adj[mult_xadj[s]..mult_xadj[s + 1]] {
                trans_adj[cursor[t as usize]] = s as u32;
                cursor[t as usize] += 1;
            }
        }
        // 3. emit every undirected edge exactly once (self loops drop);
        //    the marker array is re-stamped per vertex with the sources
        //    pointing at it, answering "does v's row contain u?" in O(1)
        marker.iter_mut().for_each(|x| *x = u32::MAX);
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for u in 0..n {
            for &s in &trans_adj[trans_xadj[u]..trans_xadj[u + 1]] {
                marker[s as usize] = u as u32;
            }
            let uu = u as u32;
            for (i, &v) in mult_adj[mult_xadj[u]..mult_xadj[u + 1]].iter().enumerate() {
                let c = mult_cnt[mult_xadj[u] + i];
                if v > uu {
                    edges.push((uu, v, c));
                } else if v < uu && marker[v as usize] != uu {
                    // the reverse edge is missing: record the edge when
                    // visiting its larger endpoint
                    edges.push((v, uu, c));
                }
            }
        }
        // 4. assemble the undirected CSR directly (no tree maps); no two
        //    emitted edges share endpoints, so rows only need sorting
        let mut out_xadj = vec![0usize; n + 1];
        for &(a, b, _) in &edges {
            out_xadj[a as usize + 1] += 1;
            out_xadj[b as usize + 1] += 1;
        }
        for i in 0..n {
            out_xadj[i + 1] += out_xadj[i];
        }
        let m = edges.len() * 2;
        let mut out_adj = vec![0u32; m];
        let mut out_wgt = vec![0u32; m];
        let mut cur: Vec<usize> = out_xadj[..n].to_vec();
        for &(a, b, w) in &edges {
            let (ai, bi) = (a as usize, b as usize);
            out_adj[cur[ai]] = b;
            out_wgt[cur[ai]] = w;
            cur[ai] += 1;
            out_adj[cur[bi]] = a;
            out_wgt[cur[bi]] = w;
            cur[bi] += 1;
        }
        let mut tmp: Vec<(u32, u32)> = Vec::new();
        for u in 0..n {
            let (s, e) = (out_xadj[u], out_xadj[u + 1]);
            if e - s > 1 {
                tmp.clear();
                tmp.extend(
                    out_adj[s..e]
                        .iter()
                        .copied()
                        .zip(out_wgt[s..e].iter().copied()),
                );
                tmp.sort_unstable();
                for (i, &(v, w)) in tmp.iter().enumerate() {
                    out_adj[s + i] = v;
                    out_wgt[s + i] = w;
                }
            }
        }
        Graph {
            xadj: out_xadj,
            adjncy: out_adj,
            adjwgt: out_wgt,
            vwgt: vec![1; n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// The neighbors of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// The edge weights corresponding to [`Graph::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: usize) -> &[u32] {
        &self.adjwgt[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Iterates over `(neighbor, weight)` pairs of vertex `v`.
    #[inline]
    pub fn edges_of(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_weights(v).iter().copied())
    }

    /// Degree (number of incident undirected edges) of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// The weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: usize) -> u32 {
        self.vwgt[v]
    }

    /// Sets the weight of vertex `v`.
    pub fn set_vertex_weight(&mut self, v: usize, w: u32) {
        self.vwgt[v] = w;
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vwgt.iter().map(|&w| w as u64).sum()
    }

    /// Checks CSR symmetry (every edge stored in both directions with equal
    /// weight).
    pub fn is_symmetric(&self) -> bool {
        (0..self.num_vertices()).all(|u| {
            self.edges_of(u).all(|(v, w)| {
                self.edges_of(v as usize)
                    .any(|(x, wx)| x as usize == u && wx == w)
            })
        })
    }

    /// The weighted edge cut of a partition: the summed weight of undirected
    /// edges whose endpoints lie in different parts.
    pub fn cut(&self, part: &[u32]) -> u64 {
        assert_eq!(part.len(), self.num_vertices());
        let mut cut = 0u64;
        for u in 0..self.num_vertices() {
            for (v, w) in self.edges_of(u) {
                if (v as usize) > u && part[u] != part[v as usize] {
                    cut += w as u64;
                }
            }
        }
        cut
    }

    /// The summed weight of cut edges incident to each part ("egress" per
    /// part, counting every cut edge once per side — this is the directed
    /// `Jmax` numerator of the paper when edge weights are one and the
    /// stencil is symmetric).
    pub fn per_part_cut(&self, part: &[u32], num_parts: usize) -> Vec<u64> {
        let mut egress = vec![0u64; num_parts];
        for u in 0..self.num_vertices() {
            for (v, w) in self.edges_of(u) {
                if part[u] != part[v as usize] {
                    egress[part[u] as usize] += w as u64;
                }
            }
        }
        egress
    }

    /// The weights of each part of a partition.
    pub fn part_weights(&self, part: &[u32], num_parts: usize) -> Vec<u64> {
        let mut weights = vec![0u64; num_parts];
        for (v, &p) in part.iter().enumerate() {
            weights[p as usize] += self.vwgt[v] as u64;
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grid_graph, path_graph};

    #[test]
    fn from_edges_builds_symmetric_csr() {
        let g = Graph::from_edges(4, &[(0, 1, 2), (1, 2, 1), (2, 3, 1), (3, 0, 5)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_symmetric());
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.edge_weights(0), &[2, 5]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.total_vertex_weight(), 4);
    }

    #[test]
    fn parallel_edges_merge_and_self_loops_drop() {
        let g = Graph::from_edges(3, &[(0, 1, 1), (1, 0, 3), (2, 2, 9)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weights(0), &[4]);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn grid_graph_edge_count() {
        let g = grid_graph(4, 5);
        assert_eq!(g.num_vertices(), 20);
        // horizontal: 4*4, vertical: 3*5
        assert_eq!(g.num_edges(), 16 + 15);
        assert!(g.is_symmetric());
    }

    #[test]
    fn cut_counts_undirected_edges_once() {
        let g = path_graph(4);
        // parts: 0 0 | 1 1 -> one cut edge
        assert_eq!(g.cut(&[0, 0, 1, 1]), 1);
        assert_eq!(g.cut(&[0, 1, 0, 1]), 3);
        assert_eq!(g.cut(&[0, 0, 0, 0]), 0);
        assert_eq!(g.per_part_cut(&[0, 0, 1, 1], 2), vec![1, 1]);
        assert_eq!(g.per_part_cut(&[0, 1, 0, 1], 2), vec![3, 3]);
        assert_eq!(g.part_weights(&[0, 0, 1, 1], 2), vec![2, 2]);
    }

    #[test]
    fn from_directed_csr_roundtrip() {
        // directed two-cycle between 0 and 1 plus edge 1->2 / 2->1
        let xadj = vec![0, 1, 3, 4];
        let adjncy = vec![1u32, 0, 2, 1];
        let g = Graph::from_directed_csr(&xadj, &adjncy);
        assert_eq!(g.num_edges(), 2);
        assert!(g.is_symmetric());
    }

    #[test]
    fn from_directed_csr_matches_reference_on_random_inputs() {
        // reference = the original O(E·d) contains-scan construction
        fn reference(xadj: &[usize], adjncy: &[u32]) -> Graph {
            let n = xadj.len() - 1;
            let mut edges = Vec::new();
            for u in 0..n {
                for &v in &adjncy[xadj[u]..xadj[u + 1]] {
                    if (u as u32) < v {
                        edges.push((u as u32, v, 1u32));
                    } else if v < u as u32
                        && !adjncy[xadj[v as usize]..xadj[v as usize + 1]].contains(&(u as u32))
                    {
                        edges.push((v, u as u32, 1u32));
                    }
                }
            }
            Graph::from_edges(n, &edges)
        }
        // deterministic pseudo-random directed CSRs: asymmetric rows,
        // duplicate entries (multiplicities), self loops, empty rows
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        for n in [1usize, 2, 3, 5, 9, 17] {
            for _case in 0..8 {
                let mut xadj = vec![0usize];
                let mut adjncy = Vec::new();
                for _u in 0..n {
                    let deg = next(2 * n + 1);
                    for _ in 0..deg {
                        adjncy.push(next(n) as u32);
                    }
                    xadj.push(adjncy.len());
                }
                let fast = Graph::from_directed_csr(&xadj, &adjncy);
                assert_eq!(fast, reference(&xadj, &adjncy), "n={n} xadj={xadj:?}");
            }
        }
    }

    #[test]
    fn from_directed_csr_handles_dense_rows_linearly() {
        // a dense hub row: vertex 0 lists every other vertex, every other
        // vertex lists 0, so the old construction ran one O(n) contains-scan
        // over the hub row per spoke — O(n²) overall; the marker pass is
        // O(E).  This pins the result structure at a size where the
        // quadratic path is already noticeable.
        let n = 2000usize;
        let mut adjncy: Vec<u32> = (1..n as u32).collect();
        let mut xadj = vec![0usize, n - 1];
        for v in 1..n {
            adjncy.push(0);
            xadj.push(n - 1 + v);
        }
        let g = Graph::from_directed_csr(&xadj, &adjncy);
        assert_eq!(g.num_vertices(), n);
        assert_eq!(g.num_edges(), n - 1);
        assert_eq!(g.degree(0), n - 1);
        assert!((1..n).all(|v| g.degree(v) == 1 && g.neighbors(v) == [0]));
        assert!(g.edge_weights(0).iter().all(|&w| w == 1));
        assert!(g.is_symmetric());
    }

    #[test]
    fn from_csr_validates_lengths() {
        let g = Graph::from_csr(vec![0, 1, 2], vec![1, 0], vec![1, 1], vec![1, 1]);
        assert_eq!(g.num_vertices(), 2);
        assert!(g.is_symmetric());
    }

    #[test]
    #[should_panic]
    fn from_csr_rejects_inconsistent_lengths() {
        Graph::from_csr(vec![0, 1], vec![1, 0], vec![1, 1], vec![1, 1]);
    }

    #[test]
    fn vertex_weight_updates() {
        let mut g = path_graph(3);
        g.set_vertex_weight(1, 5);
        assert_eq!(g.vertex_weight(1), 5);
        assert_eq!(g.total_vertex_weight(), 7);
        assert_eq!(g.part_weights(&[0, 0, 1], 2), vec![6, 1]);
    }
}
