//! A reusable scratch arena for the multilevel partitioning pipeline.
//!
//! Every stage of the pipeline (matching, contraction, graph growing, FM
//! refinement, subgraph induction) needs a handful of per-vertex scratch
//! vectors.  Allocating them per level — the seed implementation did — puts
//! an allocator round-trip in every hot loop.  A [`Workspace`] owns all of
//! these buffers; they are cleared and resized per use but keep their
//! capacity, so a full multilevel run performs no per-level scratch
//! allocation once the buffers have grown to the finest level's size.
//!
//! The workspace is deliberately `!Sync`: every parallel branch of the
//! recursive bisection owns its own workspace (the left branch inherits the
//! parent's, the right branch starts a fresh one), so no locking is needed
//! and results stay deterministic.
//!
//! Entry points that take a workspace are suffixed `_with`
//! (e.g. [`crate::partition_with`]); the plain variants allocate a transient
//! workspace for API compatibility.

use crate::bucket::BucketQueue;

/// Scratch buffers shared by all stages of the multilevel pipeline.
///
/// See the [module documentation](self) for the reuse contract.  All buffers
/// are implementation details; user code only constructs the workspace and
/// threads it through `*_with` entry points.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Vertex visit order for the randomised matching.
    pub(crate) order: Vec<usize>,
    /// Matched partner per vertex (taken/returned to avoid double borrows).
    pub(crate) partner: Vec<u32>,
    /// Matched flag per vertex.
    pub(crate) matched: Vec<bool>,
    /// Members of each coarse vertex, grouped (counting-sort payload).
    pub(crate) members: Vec<u32>,
    /// Offsets into `members`, one per coarse vertex (+1).
    pub(crate) member_offsets: Vec<usize>,
    /// Row-merge marker per coarse vertex (`u32::MAX` = untouched).
    pub(crate) marker: Vec<u32>,
    /// Row-merge weight accumulator per coarse vertex.
    pub(crate) acc: Vec<u32>,
    /// Coarse neighbours of the current row.
    pub(crate) row: Vec<u32>,
    /// Region membership flags for greedy graph growing.
    pub(crate) in_region: Vec<bool>,
    /// Gain per vertex (graph growing and FM refinement).
    pub(crate) gain: Vec<i64>,
    /// Candidate partition of the current growing attempt.
    pub(crate) grow_part: Vec<u32>,
    /// Gain-bucket queue of part-0 vertices for FM passes; also reused as the
    /// frontier queue of greedy graph growing.
    pub(crate) bq0: BucketQueue,
    /// Gain-bucket queue of part-1 vertices for FM passes.
    pub(crate) bq1: BucketQueue,
    /// Move journal of the current FM pass.
    pub(crate) moves: Vec<usize>,
    /// Global→local vertex ids for subgraph induction (full graph size,
    /// reset lazily: only entries touched by the last induction are cleared).
    pub(crate) global_to_local: Vec<u32>,
    /// Ping/pong partition buffer for hierarchy projection.
    pub(crate) part_a: Vec<u32>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Clears `buf` and resizes it to `n` copies of `value`, reusing its
    /// capacity.
    pub(crate) fn reset<T: Clone>(buf: &mut Vec<T>, n: usize, value: T) {
        buf.clear();
        buf.resize(n, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_reuses_capacity() {
        let mut ws = Workspace::new();
        Workspace::reset(&mut ws.gain, 100, 0);
        assert_eq!(ws.gain.len(), 100);
        let cap = ws.gain.capacity();
        Workspace::reset(&mut ws.gain, 50, 7);
        assert_eq!(ws.gain.len(), 50);
        assert!(ws.gain.iter().all(|&g| g == 7));
        assert_eq!(ws.gain.capacity(), cap, "capacity must be retained");
    }
}
