//! A reusable scratch arena for the multilevel partitioning pipeline.
//!
//! Every stage of the pipeline (matching, contraction, graph growing, FM
//! refinement, subgraph induction) needs a handful of per-vertex scratch
//! vectors.  Allocating them per level — the seed implementation did — puts
//! an allocator round-trip in every hot loop.  A [`Workspace`] owns all of
//! these buffers; they are cleared and resized per use but keep their
//! capacity, so a full multilevel run performs no per-level scratch
//! allocation once the buffers have grown to the finest level's size.
//!
//! The workspace is deliberately `!Sync`: every parallel branch of the
//! recursive bisection owns its own workspace (the left branch inherits the
//! parent's, the right branch starts a fresh one), so no locking is needed
//! and results stay deterministic.
//!
//! Entry points that take a workspace are suffixed `_with`
//! (e.g. [`crate::partition_with`]); the plain variants allocate a transient
//! workspace for API compatibility.

use crate::bucket::BucketQueue;

/// Scratch buffers shared by all stages of the multilevel pipeline.
///
/// See the [module documentation](self) for the reuse contract.  All buffers
/// are implementation details; user code only constructs the workspace and
/// threads it through `*_with` entry points.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Matched partner per vertex (taken/returned to avoid double borrows).
    pub(crate) partner: Vec<u32>,
    /// Proposed partner per vertex for one propose-then-commit matching
    /// round (`u32::MAX` = no proposal).
    pub(crate) proposal: Vec<u32>,
    /// Per-vertex random draw for one matching round; edges tie-break on the
    /// XOR of their endpoints' draws (symmetric, O(n) per round to refresh
    /// instead of a per-edge hash).
    pub(crate) rand: Vec<u64>,
    /// Representative (smallest member id) per coarse vertex.
    pub(crate) rep: Vec<u32>,
    /// Scratch prefix-sum offsets (contraction upper-bound row starts).
    pub(crate) row_offsets: Vec<usize>,
    /// Contraction scratch: gathered coarse neighbor ids per row.
    pub(crate) scratch_adj: Vec<u32>,
    /// Contraction scratch: gathered coarse edge weights per row.
    pub(crate) scratch_wgt: Vec<u32>,
    /// Merged (deduplicated) degree per coarse vertex.
    pub(crate) cdeg: Vec<u32>,
    /// Region membership flags for greedy graph growing.
    pub(crate) in_region: Vec<bool>,
    /// Gain per vertex (graph growing and FM refinement).
    pub(crate) gain: Vec<i64>,
    /// Boundary flag per vertex (FM fills its queues from these only).
    pub(crate) boundary: Vec<bool>,
    /// Moved-this-pass flag per vertex (FM move locking).
    pub(crate) locked: Vec<bool>,
    /// Candidate partition of the current growing attempt.
    pub(crate) grow_part: Vec<u32>,
    /// Gain-bucket queue of part-0 vertices for FM passes; also reused as the
    /// frontier queue of greedy graph growing.
    pub(crate) bq0: BucketQueue,
    /// Gain-bucket queue of part-1 vertices for FM passes.
    pub(crate) bq1: BucketQueue,
    /// Move journal of the current FM pass.
    pub(crate) moves: Vec<usize>,
    /// Global→local vertex ids for subgraph induction (full graph size,
    /// reset lazily: only entries touched by the last induction are cleared).
    pub(crate) global_to_local: Vec<u32>,
    /// Ping/pong partition buffer for hierarchy projection.
    pub(crate) part_a: Vec<u32>,
    /// Bisection side per sub-problem vertex (taken/returned by the
    /// recursive bisection so every tree node reuses one buffer).
    pub(crate) side: Vec<u32>,
    /// Pool of retired vertex-list buffers, recycled by the recursion so the
    /// sequential spine performs no per-node list allocation in steady state.
    pub(crate) spare: Vec<Vec<u32>>,
}

/// Cap on the recycled-buffer pool; beyond this, retired buffers are freed.
const SPARE_POOL_CAP: usize = 64;

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Clears `buf` and resizes it to `n` copies of `value`, reusing its
    /// capacity.
    pub(crate) fn reset<T: Clone>(buf: &mut Vec<T>, n: usize, value: T) {
        buf.clear();
        buf.resize(n, value);
    }

    /// Grows `buf` to at least `n` elements without clearing: existing
    /// contents are preserved (and arbitrary), so callers must write before
    /// they read.  Used by stages that fully overwrite their scratch — it
    /// skips the O(n) refill that [`Workspace::reset`] would pay.
    pub(crate) fn ensure_len<T: Clone + Default>(buf: &mut Vec<T>, n: usize) {
        if buf.len() < n {
            buf.resize(n, T::default());
        }
    }

    /// Takes a cleared vertex-list buffer from the recycle pool (or a fresh
    /// one when the pool is empty).
    pub(crate) fn take_spare(&mut self) -> Vec<u32> {
        self.spare.pop().unwrap_or_default()
    }

    /// Returns a retired vertex-list buffer to the recycle pool, keeping its
    /// capacity for the next [`Workspace::take_spare`].
    pub(crate) fn recycle(&mut self, mut buf: Vec<u32>) {
        if self.spare.len() < SPARE_POOL_CAP {
            buf.clear();
            self.spare.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_reuses_capacity() {
        let mut ws = Workspace::new();
        Workspace::reset(&mut ws.gain, 100, 0);
        assert_eq!(ws.gain.len(), 100);
        let cap = ws.gain.capacity();
        Workspace::reset(&mut ws.gain, 50, 7);
        assert_eq!(ws.gain.len(), 50);
        assert!(ws.gain.iter().all(|&g| g == 7));
        assert_eq!(ws.gain.capacity(), cap, "capacity must be retained");
    }

    #[test]
    fn spare_pool_recycles_capacity() {
        let mut ws = Workspace::new();
        let mut buf = ws.take_spare();
        buf.extend(0..100);
        let cap = buf.capacity();
        ws.recycle(buf);
        let again = ws.take_spare();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "pool must retain capacity");
    }
}
