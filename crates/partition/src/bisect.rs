//! Initial bisection by greedy graph growing.
//!
//! A region is grown from a seed vertex, always absorbing the frontier vertex
//! with the highest gain (edge weight towards the region minus edge weight
//! away from it), until the region reaches the requested weight.  Several
//! random seeds are tried and the bisection with the smallest cut is kept.
//!
//! Frontier selection uses the same dense gain-bucket queue as FM refinement
//! ([`crate::bucket::BucketQueue`], in its smallest-id tie-breaking mode).
//! For gains within the dense bucket range — always the case short of
//! pathological edge weights that trip `gain_bucket_bound`'s O(n + E) cap,
//! where clamping merges the extreme buckets — this selects exactly the
//! vertex the linear frontier scan it replaced would have picked.  Gain
//! maintenance per absorption drops from O(frontier) to O(degree); the
//! extraction itself still walks the top bucket (the frontier vertices
//! sharing the best gain).
//!
//! Scratch state (region flags, gains, the frontier queue, candidate
//! partitions) lives in a [`Workspace`] so repeated bisections allocate
//! nothing but the returned partition vector.

use crate::fm::gain_bucket_bound;
use crate::workspace::Workspace;
use crate::Graph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Grows part 0 to (approximately, exactly for unit weights) `target0` total
/// vertex weight, trying `attempts` random seed vertices and returning the
/// partition with the smallest cut.
pub fn greedy_bisection(graph: &Graph, target0: u64, attempts: usize, seed: u64) -> Vec<u32> {
    greedy_bisection_with(graph, target0, attempts, seed, &mut Workspace::new())
}

/// [`greedy_bisection`] with caller-provided scratch buffers.
pub fn greedy_bisection_with(
    graph: &Graph,
    target0: u64,
    attempts: usize,
    seed: u64,
    ws: &mut Workspace,
) -> Vec<u32> {
    let mut out = Vec::new();
    greedy_bisection_into(graph, target0, attempts, seed, ws, &mut out);
    out
}

/// [`greedy_bisection_with`] writing the best partition into a caller-owned
/// buffer (cleared and refilled, capacity reused), so the recursive
/// bisection performs no per-node partition allocation.
pub(crate) fn greedy_bisection_into(
    graph: &Graph,
    target0: u64,
    attempts: usize,
    seed: u64,
    ws: &mut Workspace,
    out: &mut Vec<u32>,
) {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot bisect an empty graph");
    let gain_bound = gain_bucket_bound(graph);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best_cut: Option<u64> = None;
    for _ in 0..attempts.max(1) {
        let start = rng.gen_range(0..n);
        grow_from(graph, target0, start, gain_bound, ws);
        let cut = graph.cut(&ws.grow_part);
        if best_cut.is_none_or(|bc| cut < bc) {
            best_cut = Some(cut);
            out.clone_from(&ws.grow_part);
        }
    }
}

/// Grows part 0 from a single start vertex into `ws.grow_part`.
fn grow_from(graph: &Graph, target0: u64, start: usize, gain_bound: i64, ws: &mut Workspace) {
    let n = graph.num_vertices();
    Workspace::reset(&mut ws.grow_part, n, 1u32);
    if target0 == 0 {
        return;
    }
    Workspace::reset(&mut ws.in_region, n, false);
    // gain of absorbing v = (weight towards region) - (weight away from it);
    // frontier membership is tracked by the bucket queue itself
    Workspace::reset(&mut ws.gain, n, 0i64);
    ws.bq0.reset(n, gain_bound);
    let mut weight0 = 0u64;

    absorb(graph, start, ws, &mut weight0);
    while weight0 < target0 {
        // pick the frontier vertex with the highest gain (ties: lowest id);
        // if the frontier is empty (disconnected graph) take any outside vertex.
        let next = ws
            .bq0
            .pop_max_min_id()
            .map(|(v, _)| v)
            .or_else(|| (0..n).find(|&v| !ws.in_region[v]));
        match next {
            Some(v) => absorb(graph, v, ws, &mut weight0),
            None => break,
        }
    }
}

/// Moves `v` into the region and updates the frontier gains.
fn absorb(graph: &Graph, v: usize, ws: &mut Workspace, weight0: &mut u64) {
    ws.grow_part[v] = 0;
    ws.in_region[v] = true;
    ws.bq0.remove(v);
    *weight0 += graph.vertex_weight(v) as u64;
    for (u, w) in graph.edges_of(v) {
        let u = u as usize;
        if ws.in_region[u] {
            continue;
        }
        if ws.bq0.contains(u) {
            ws.gain[u] += 2 * w as i64;
            ws.bq0.update(u, ws.gain[u]);
        } else {
            // entering the frontier: gain starts at -(total incident weight)
            let total: i64 = graph.edge_weights(u).iter().map(|&x| x as i64).sum();
            ws.gain[u] = 2 * w as i64 - total;
            ws.bq0.insert(u, ws.gain[u]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grid_graph, path_graph};

    #[test]
    fn bisection_hits_exact_target_with_unit_weights() {
        let g = grid_graph(6, 6);
        let part = greedy_bisection(&g, 18, 4, 11);
        let w = g.part_weights(&part, 2);
        assert_eq!(w[0], 18);
        assert_eq!(w[1], 18);
    }

    #[test]
    fn bisection_of_path_is_contiguous_and_cheap() {
        let g = path_graph(10);
        let part = greedy_bisection(&g, 5, 8, 3);
        assert_eq!(g.part_weights(&part, 2), vec![5, 5]);
        // the optimal cut of a path bisection is 1; greedy growing finds it
        assert_eq!(g.cut(&part), 1);
    }

    #[test]
    fn bisection_of_grid_is_near_optimal() {
        // 8x8 grid split in half: optimal cut is 8; greedy growing from a
        // corner should find something close (allow small slack).
        let g = grid_graph(8, 8);
        let part = greedy_bisection(&g, 32, 10, 5);
        assert_eq!(g.part_weights(&part, 2)[0], 32);
        assert!(g.cut(&part) <= 12, "cut = {}", g.cut(&part));
    }

    #[test]
    fn zero_target_leaves_everything_in_part1() {
        let g = path_graph(4);
        let part = greedy_bisection(&g, 0, 2, 0);
        assert!(part.iter().all(|&p| p == 1));
    }

    #[test]
    fn full_target_absorbs_everything() {
        let g = path_graph(4);
        let part = greedy_bisection(&g, 4, 2, 0);
        assert!(part.iter().all(|&p| p == 0));
        assert_eq!(g.cut(&part), 0);
    }

    #[test]
    fn works_on_disconnected_graphs() {
        // two disjoint edges
        let g = Graph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let part = greedy_bisection(&g, 2, 4, 9);
        assert_eq!(g.part_weights(&part, 2), vec![2, 2]);
    }

    #[test]
    fn respects_vertex_weights() {
        let mut g = path_graph(4);
        g.set_vertex_weight(0, 3);
        // target 3 should be reachable by absorbing just vertex 0 (or a
        // combination); the grown weight must be at least the target.
        let part = greedy_bisection(&g, 3, 4, 2);
        assert!(g.part_weights(&part, 2)[0] >= 3);
    }

    #[test]
    fn workspace_reuse_is_deterministic() {
        let g = grid_graph(9, 9);
        let mut ws = Workspace::new();
        let a = greedy_bisection_with(&g, 40, 4, 3, &mut ws);
        let b = greedy_bisection_with(&g, 40, 4, 3, &mut ws);
        assert_eq!(a, b);
        assert_eq!(a, greedy_bisection(&g, 40, 4, 3));
    }
}
