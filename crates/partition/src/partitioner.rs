//! Multilevel recursive bisection into parts of exact, arbitrary sizes.
//!
//! The entry point is [`partition`]: the vertex set is recursively split in
//! two, each bisection being solved with the multilevel pipeline (coarsening
//! → greedy initial bisection → gain-bucket FM refinement projected back
//! through the hierarchy, see [`crate::fm`]).  Target part sizes are
//! arbitrary, which is required to respect heterogeneous node allocations
//! (`n_i` processes per node).
//!
//! # Parallelism
//!
//! The two halves of every bisection are independent sub-problems; they are
//! executed with [`rayon::join`] whenever the sub-problem is large enough
//! ([`PartitionConfig::parallel`], on by default), and coarsening inside a
//! bisection additionally runs its propose-then-commit matching and per-row
//! contraction in parallel on large levels.  Every parallel branch owns its
//! own [`Workspace`], part assignments are written into disjoint slots of a
//! shared atomic array, and all seeds derive deterministically from the
//! parent seed — so the result is **identical for every thread count**
//! (including fully sequential execution with `RAYON_NUM_THREADS=1`).
//!
//! # Allocation and memory
//!
//! All per-level scratch lives in a [`Workspace`] threaded through the
//! pipeline; a steady-state multilevel run only allocates the retained
//! outputs (the coarse graphs of the hierarchy and the final assignment).
//! The recursion itself is allocation-free in steady state too: each node
//! splits its vertex list in place (left half) plus one buffer recycled
//! through the workspace pool (right half), the bisection side array is a
//! single reused workspace buffer, and hierarchy levels are dropped as soon
//! as the projection passes through them, so with geometrically shrinking
//! levels (see [`crate::coarsen`]) peak retained memory is O(n).

use std::sync::atomic::{AtomicU32, Ordering};

use crate::bisect::greedy_bisection_into;
use crate::coarsen::coarsen_hierarchy_impl;
use crate::fm::{fm_refine_hinted, fm_refine_interior, rebalance};
use crate::workspace::Workspace;
use crate::Graph;

/// Sub-problems below this vertex count are recursed sequentially; spawning a
/// task (plus its fresh workspace) costs more than the bisection itself.
const PARALLEL_THRESHOLD: usize = 1 << 11;

/// Configuration of the multilevel partitioner.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Exact target sizes (summed vertex weight) of every part.
    pub target_sizes: Vec<usize>,
    /// Seed for all randomised components.
    pub seed: u64,
    /// Stop coarsening once the graph has at most this many vertices.
    pub coarsen_threshold: usize,
    /// Number of random seeds tried for the initial bisection.
    pub bisection_attempts: usize,
    /// Maximum FM passes per level (the refiner cycles through its
    /// deterministic tie-breaking variants within this budget and stops
    /// early once all of them are stale; see [`crate::fm::fm_refine_with`]).
    pub fm_passes: usize,
    /// Whether the independent halves of each bisection may run on separate
    /// threads.  The result does not depend on this flag (or on the thread
    /// count); disable it to benchmark the sequential baseline.
    pub parallel: bool,
}

impl PartitionConfig {
    /// Creates a configuration with default tuning parameters.
    pub fn new(target_sizes: Vec<usize>) -> Self {
        PartitionConfig {
            target_sizes,
            seed: 0xC0FFEE,
            coarsen_threshold: 48,
            bisection_attempts: 6,
            fm_passes: 12,
            parallel: true,
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables parallel recursion (the result is unaffected).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Errors reported by [`partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The target sizes do not sum to the total vertex weight of the graph.
    SizeMismatch {
        /// Sum of the requested part sizes.
        requested: u64,
        /// Total vertex weight of the graph.
        available: u64,
    },
    /// No parts were requested.
    NoParts,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::SizeMismatch {
                requested,
                available,
            } => write!(
                f,
                "target sizes sum to {requested} but the graph has total vertex weight {available}"
            ),
            PartitionError::NoParts => write!(f, "at least one part is required"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Partitions `graph` into `cfg.target_sizes.len()` parts of exactly the
/// requested sizes (for unit vertex weights), minimising the edge cut.
/// Returns the part index of every vertex.
pub fn partition(graph: &Graph, cfg: &PartitionConfig) -> Result<Vec<u32>, PartitionError> {
    partition_with(graph, cfg, &mut Workspace::new())
}

/// [`partition`] with a caller-provided [`Workspace`] (reused by the
/// sequential spine of the recursion; parallel branches start their own).
pub fn partition_with(
    graph: &Graph,
    cfg: &PartitionConfig,
    ws: &mut Workspace,
) -> Result<Vec<u32>, PartitionError> {
    if cfg.target_sizes.is_empty() {
        return Err(PartitionError::NoParts);
    }
    let requested: u64 = cfg.target_sizes.iter().map(|&s| s as u64).sum();
    let available = graph.total_vertex_weight();
    if requested != available {
        return Err(PartitionError::SizeMismatch {
            requested,
            available,
        });
    }
    // Parallel branches write disjoint entries; atomics make that shared
    // write sound without locking (relaxed ordering suffices — the scope
    // join provides the synchronisation edge).
    let assignment: Vec<AtomicU32> = (0..graph.num_vertices())
        .map(|_| AtomicU32::new(0))
        .collect();
    let all: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    let part_ids: Vec<u32> = (0..cfg.target_sizes.len() as u32).collect();
    recurse(graph, cfg, all, &part_ids, &assignment, cfg.seed, ws);
    Ok(assignment.into_iter().map(AtomicU32::into_inner).collect())
}

/// Recursively bisects the sub-problem consisting of `vertices` (global ids,
/// ascending) and the parts `part_ids` (indices into `cfg.target_sizes`).
///
/// Takes ownership of `vertices`: the left half is split off in place and
/// the buffer is recycled through the workspace pool once the sub-problem
/// bottoms out, so the sequential spine of the recursion reuses a bounded
/// set of vertex-list buffers instead of allocating two fresh ones per node.
fn recurse(
    graph: &Graph,
    cfg: &PartitionConfig,
    mut vertices: Vec<u32>,
    part_ids: &[u32],
    assignment: &[AtomicU32],
    seed: u64,
    ws: &mut Workspace,
) {
    if part_ids.len() == 1 {
        for &v in &vertices {
            assignment[v as usize].store(part_ids[0], Ordering::Relaxed);
        }
        ws.recycle(vertices);
        return;
    }
    // split the parts into two groups of roughly equal total size
    let mid = part_ids.len() / 2;
    let (left_ids, right_ids) = part_ids.split_at(mid);
    let left_target: u64 = left_ids
        .iter()
        .map(|&p| cfg.target_sizes[p as usize] as u64)
        .sum();

    // build the subgraph induced by `vertices` and bisect it; the subgraph
    // drops before recursing so only one induced level is live at a time
    let mut side = std::mem::take(&mut ws.side);
    {
        let sub = induced_subgraph(graph, &vertices, ws);
        multilevel_bisection(&sub, left_target, cfg, seed, ws, &mut side);
    }

    // split in place: the left half compacts into `vertices`, the right half
    // fills a pooled buffer
    let mut right_vertices = ws.take_spare();
    let mut keep = 0usize;
    for local in 0..vertices.len() {
        let global = vertices[local];
        if side[local] == 0 {
            vertices[keep] = global;
            keep += 1;
        } else {
            right_vertices.push(global);
        }
    }
    vertices.truncate(keep);
    ws.side = side;
    let left_vertices = vertices;

    let left_seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let right_seed = seed.wrapping_mul(6364136223846793005).wrapping_add(2);
    let big_enough = left_vertices.len().min(right_vertices.len()) >= PARALLEL_THRESHOLD;
    if cfg.parallel && big_enough {
        rayon::join(
            || {
                recurse(
                    graph,
                    cfg,
                    left_vertices,
                    left_ids,
                    assignment,
                    left_seed,
                    ws,
                )
            },
            || {
                let mut right_ws = Workspace::new();
                recurse(
                    graph,
                    cfg,
                    right_vertices,
                    right_ids,
                    assignment,
                    right_seed,
                    &mut right_ws,
                )
            },
        );
    } else {
        recurse(
            graph,
            cfg,
            left_vertices,
            left_ids,
            assignment,
            left_seed,
            ws,
        );
        recurse(
            graph,
            cfg,
            right_vertices,
            right_ids,
            assignment,
            right_seed,
            ws,
        );
    }
}

/// Bisects `graph` into parts of weight `target0` / rest using the multilevel
/// pipeline, writing the side of every vertex into `out`.
///
/// Hierarchy levels are dropped as soon as the projection has passed through
/// them, so the peak retained memory is the (geometrically shrinking)
/// unprojected suffix of the hierarchy — O(n) overall.
fn multilevel_bisection(
    graph: &Graph,
    target0: u64,
    cfg: &PartitionConfig,
    seed: u64,
    ws: &mut Workspace,
    out: &mut Vec<u32>,
) {
    let mut levels =
        coarsen_hierarchy_impl(graph, cfg.coarsen_threshold.max(4), seed, cfg.parallel, ws);
    // initial bisection on the coarsest graph
    let coarsest = levels.last().map(|l| &l.graph).unwrap_or(graph);
    greedy_bisection_into(coarsest, target0, cfg.bisection_attempts, seed, ws, out);
    rebalance(coarsest, out, target0);
    let mut cut = fm_refine_hinted(coarsest, out, target0, cfg.fm_passes, None, ws);
    // project back through the hierarchy, refining at every level; popping
    // drops each level right after its projection (drop-as-you-project)
    let mut finer_part = std::mem::take(&mut ws.part_a);
    while let Some(level) = levels.pop() {
        let finer: &Graph = levels.last().map(|l| &l.graph).unwrap_or(graph);
        finer_part.clear();
        finer_part.extend((0..finer.num_vertices()).map(|v| out[level.fine_to_coarse[v] as usize]));
        // Projection preserves the cut exactly (contraction sums parallel
        // edge weights), so each level starts from the coarser level's
        // refined cut instead of an O(E) recomputation.
        cut = if levels.is_empty() {
            // finest level: full refinement budget
            fm_refine_hinted(
                finer,
                &mut finer_part,
                target0,
                cfg.fm_passes,
                Some(cut),
                ws,
            )
        } else {
            fm_refine_interior(
                finer,
                &mut finer_part,
                target0,
                cfg.fm_passes,
                Some(cut),
                ws,
            )
        };
        let _ = cut;
        std::mem::swap(out, &mut finer_part);
    }
    ws.part_a = finer_part;
}

/// Builds the subgraph induced by `vertices` (edges with both endpoints
/// inside, global ids ascending) directly in CSR form.
///
/// The global→local id table persists in the workspace at full graph size and
/// is cleared lazily (only the entries of the previous induction are reset),
/// so induction at every recursion node costs `O(|sub| + |edges(sub)|)`.  A
/// counting pass sizes the arrays exactly, so no over-allocation outlives
/// the node.
fn induced_subgraph(graph: &Graph, vertices: &[u32], ws: &mut Workspace) -> Graph {
    debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
    if ws.global_to_local.len() != graph.num_vertices() {
        Workspace::reset(&mut ws.global_to_local, graph.num_vertices(), u32::MAX);
    }
    for (local, &global) in vertices.iter().enumerate() {
        ws.global_to_local[global as usize] = local as u32;
    }

    let m = vertices.len();
    let mut edge_count = 0usize;
    for &global in vertices {
        for &u in graph.neighbors(global as usize) {
            if ws.global_to_local[u as usize] != u32::MAX {
                edge_count += 1;
            }
        }
    }
    let mut xadj = Vec::with_capacity(m + 1);
    let mut adjncy = Vec::with_capacity(edge_count);
    let mut adjwgt = Vec::with_capacity(edge_count);
    let mut vwgt = Vec::with_capacity(m);
    xadj.push(0usize);
    for &global in vertices {
        for (u, w) in graph.edges_of(global as usize) {
            let lu = ws.global_to_local[u as usize];
            if lu != u32::MAX {
                adjncy.push(lu);
                adjwgt.push(w);
            }
        }
        xadj.push(adjncy.len());
        vwgt.push(graph.vertex_weight(global as usize));
    }

    // lazy reset: only touched entries
    for &global in vertices {
        ws.global_to_local[global as usize] = u32::MAX;
    }
    Graph::from_csr(xadj, adjncy, adjwgt, vwgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grid_graph, path_graph};
    use proptest::prelude::*;

    #[test]
    fn partition_respects_exact_sizes() {
        let g = grid_graph(6, 8);
        let cfg = PartitionConfig::new(vec![12, 12, 12, 12]);
        let parts = partition(&g, &cfg).unwrap();
        let w = g.part_weights(&parts, 4);
        assert_eq!(w, vec![12, 12, 12, 12]);
    }

    #[test]
    fn partition_supports_heterogeneous_sizes() {
        let g = grid_graph(5, 5);
        let cfg = PartitionConfig::new(vec![10, 8, 7]);
        let parts = partition(&g, &cfg).unwrap();
        assert_eq!(g.part_weights(&parts, 3), vec![10, 8, 7]);
    }

    #[test]
    fn partition_quality_on_path_is_optimal() {
        // Partitioning a path of 24 into 4 parts of 6: optimal cut = 3.
        let g = path_graph(24);
        let cfg = PartitionConfig::new(vec![6, 6, 6, 6]);
        let parts = partition(&g, &cfg).unwrap();
        assert_eq!(g.part_weights(&parts, 4), vec![6, 6, 6, 6]);
        assert!(g.cut(&parts) <= 5, "cut = {}", g.cut(&parts));
    }

    #[test]
    fn partition_quality_on_grid_is_reasonable() {
        // 8x8 grid into 4 parts of 16: optimal (4x4 blocks) cut = 32 edges.
        let g = grid_graph(8, 8);
        let cfg = PartitionConfig::new(vec![16, 16, 16, 16]);
        let parts = partition(&g, &cfg).unwrap();
        assert_eq!(g.part_weights(&parts, 4), vec![16, 16, 16, 16]);
        let cut = g.cut(&parts);
        assert!(cut <= 48, "cut = {cut}");
    }

    #[test]
    fn partition_single_part_is_trivial() {
        let g = path_graph(5);
        let cfg = PartitionConfig::new(vec![5]);
        let parts = partition(&g, &cfg).unwrap();
        assert!(parts.iter().all(|&p| p == 0));
        assert_eq!(g.cut(&parts), 0);
    }

    #[test]
    fn partition_rejects_bad_configs() {
        let g = path_graph(4);
        assert_eq!(
            partition(&g, &PartitionConfig::new(vec![])),
            Err(PartitionError::NoParts)
        );
        assert_eq!(
            partition(&g, &PartitionConfig::new(vec![3, 3])),
            Err(PartitionError::SizeMismatch {
                requested: 6,
                available: 4
            })
        );
        assert!(PartitionError::NoParts.to_string().contains("at least one"));
        assert!(PartitionError::SizeMismatch {
            requested: 6,
            available: 4
        }
        .to_string()
        .contains("6"));
    }

    #[test]
    fn induced_subgraph_extracts_edges() {
        let g = grid_graph(3, 3);
        let mut ws = Workspace::new();
        let sub = induced_subgraph(&g, &[0, 1, 3, 4], &mut ws);
        assert_eq!(sub.num_vertices(), 4);
        // edges inside the 2x2 corner: (0,1), (0,3), (1,4), (3,4)
        assert_eq!(sub.num_edges(), 4);
        assert!(sub.is_symmetric());
        // lazy reset leaves the table clean for the next induction
        let sub2 = induced_subgraph(&g, &[4, 5, 7, 8], &mut ws);
        assert_eq!(sub2.num_edges(), 4);
    }

    #[test]
    fn partition_is_deterministic_for_a_seed() {
        let g = grid_graph(6, 6);
        let a = partition(&g, &PartitionConfig::new(vec![12, 12, 12]).with_seed(5)).unwrap();
        let b = partition(&g, &PartitionConfig::new(vec![12, 12, 12]).with_seed(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn partition_with_reused_workspace_is_deterministic() {
        // the recycled buffer pool and reused side buffer must not leak
        // state between runs
        let g = grid_graph(10, 9);
        let cfg = PartitionConfig::new(vec![30, 30, 30]).with_seed(8);
        let mut ws = Workspace::new();
        let a = partition_with(&g, &cfg, &mut ws).unwrap();
        let b = partition_with(&g, &cfg, &mut ws).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, partition(&g, &cfg).unwrap());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // 48x48 grid (2304 vertices, above the parallel threshold) into 12
        // parts: the parallel and sequential runs must produce the identical
        // assignment for the same seed.
        let g = grid_graph(48, 48);
        let sizes = vec![192usize; 12];
        let par = partition(&g, &PartitionConfig::new(sizes.clone()).with_seed(3)).unwrap();
        let seq = partition(
            &g,
            &PartitionConfig::new(sizes)
                .with_seed(3)
                .with_parallel(false),
        )
        .unwrap();
        assert_eq!(par, seq);
        assert_eq!(g.part_weights(&par, 12), vec![192u64; 12]);
    }

    #[test]
    fn parallel_and_sequential_agree_above_coarsening_par_threshold() {
        // 150x120 = 18000 vertices crosses the parallel matching/contraction
        // threshold inside coarsening; assignments must still be identical.
        let g = grid_graph(150, 120);
        let sizes = vec![3000usize; 6];
        let par = partition(&g, &PartitionConfig::new(sizes.clone()).with_seed(4)).unwrap();
        let seq = partition(
            &g,
            &PartitionConfig::new(sizes)
                .with_seed(4)
                .with_parallel(false),
        )
        .unwrap();
        assert_eq!(par, seq);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_partition_sizes_always_exact(
            rows in 2u32..7, cols in 2u32..7, parts in 2usize..5, seed in 0u64..20,
        ) {
            let g = grid_graph(rows, cols);
            let total = (rows * cols) as usize;
            if total.is_multiple_of(parts) {
                let cfg = PartitionConfig::new(vec![total / parts; parts]).with_seed(seed);
                let assignment = partition(&g, &cfg).unwrap();
                let w = g.part_weights(&assignment, parts);
                prop_assert!(w.iter().all(|&x| x == (total / parts) as u64), "{w:?}");
            }
        }
    }
}
