//! # stencilmap
//!
//! Umbrella crate of the *stencilmap* workspace — a Rust reproduction of
//! *"Efficient Process-to-Node Mapping Algorithms for Stencil Computations"*
//! (Hunold, von Kirchbach, Lehr, Schulz, Träff — IEEE CLUSTER 2020).
//!
//! It re-exports the individual crates under stable names so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`grid`] — Cartesian grids, stencils, communication graphs
//!   (`stencil-grid`),
//! * [`mapping`] — the mapping algorithms and metrics (`stencil-mapping`),
//! * [`partition`] — the multilevel graph partitioner (`graph-partition`),
//! * [`sim`] — machine models and the exchange-time simulator
//!   (`cluster-sim`),
//! * [`mpc`] — the thread-based message-passing runtime (`mpc-sim`).
//!
//! ## Quickstart
//!
//! ```
//! use stencilmap::prelude::*;
//!
//! // The headline instance of the paper: 50 nodes x 48 processes on a
//! // 50 x 48 grid with a nearest-neighbor stencil.
//! let problem = MappingProblem::new(
//!     Dims::from_slice(&[50, 48]),
//!     Stencil::nearest_neighbor(2),
//!     NodeAllocation::homogeneous(50, 48),
//! ).unwrap();
//! let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
//!
//! let blocked = metrics::evaluate(&graph, &Blocked.compute(&problem).unwrap());
//! let strips = metrics::evaluate(&graph, &StencilStrips.compute(&problem).unwrap());
//! assert!(strips.j_sum * 3 < blocked.j_sum);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use cluster_sim as sim;
pub use graph_partition as partition;
pub use mpc_sim as mpc;
pub use stencil_grid as grid;
pub use stencil_mapping as mapping;

/// Commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use cluster_sim::{ExchangeModel, Machine, Measurement, Summary};
    pub use stencil_grid::{dims_create, CartGraph, Dims, NodeAllocation, Stencil};
    pub use stencil_mapping::analysis::{InstanceSpec, StencilKind};
    pub use stencil_mapping::baselines::{Blocked, RandomMapping, RoundRobin};
    pub use stencil_mapping::cart_comm::ReorderAlgorithm;
    pub use stencil_mapping::hyperplane::Hyperplane;
    pub use stencil_mapping::kdtree::KdTree;
    pub use stencil_mapping::metrics;
    pub use stencil_mapping::nodecart::Nodecart;
    pub use stencil_mapping::stencil_strips::StencilStrips;
    pub use stencil_mapping::viem::GraphMapper;
    pub use stencil_mapping::{
        CartStencilComm, MapError, Mapper, Mapping, MappingCost, MappingProblem, RankLocalMapper,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_all_mappers() {
        let problem = MappingProblem::new(
            Dims::from_slice(&[6, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(4, 6),
        )
        .unwrap();
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(Hyperplane::default()),
            Box::new(KdTree),
            Box::new(StencilStrips),
            Box::new(Nodecart),
            Box::new(GraphMapper::with_seed(1)),
            Box::new(Blocked),
            Box::new(RoundRobin),
            Box::new(RandomMapping::with_seed(1)),
        ];
        for m in mappers {
            let mapping = m.compute(&problem).unwrap();
            assert!(mapping.respects_allocation(problem.alloc()), "{}", m.name());
        }
    }
}
